(** Register dataflow over one core's instruction stream.

    Word-granular over the flat vector register space (XbarIn / XbarOut /
    GPR, honoring each operand's [vec_width]) plus the scalar register
    file. Two {!Absint} passes over the {!Cfg}:

    - forward must-defined analysis: a register word read by an
      instruction before any write reaches it on every path is reported
      as [E-UBD] (error);
    - backward liveness: a write none of whose words is ever read again
      is reported as [W-DEADSTORE] (warning).

    The MVM instruction defines the XbarOut vectors of every MVMU in its
    mask and observes the matching XbarIn vectors for liveness only —
    elements past the staged operand are legitimately unwritten, so they
    are exempt from the def-before-use check.

    Unreachable instructions are skipped by both passes and summarized as
    [I-UNREACH] (info). Assumes the stream already passed
    {!Puma_isa.Check.diagnose}. *)

type effects = {
  defs : (int * int) list;
  strict : (int * int) list;
  soft : (int * int) list;
}
(** Register effects of one instruction as [(base, width)] ranges over
    the combined register space (vector words [0, layout.total), then
    scalar registers at [layout.total + s]). [strict] uses participate in
    the def-before-use check; [soft] uses only keep values live. *)

val effects : Puma_isa.Operand.layout -> Puma_isa.Instr.t -> effects

val reg_name : Puma_isa.Operand.layout -> int -> string
(** Render a combined-space register index (e.g. ["xin0[3]"], ["r12"],
    ["s2"]). *)

val liveness :
  layout:Puma_isa.Operand.layout -> Cfg.t -> Absint.Bset.t option array
(** Per-block live-out sets over the combined register space (the
    backward-liveness fixpoint; [None] only for streams with no blocks).
    Shared with {!Resource}'s register-pressure estimation. *)

val analyze :
  layout:Puma_isa.Operand.layout ->
  tile:int ->
  core:int ->
  Puma_isa.Instr.t array ->
  Diag.t list
