(** Register dataflow over one core's instruction stream.

    Word-granular over the flat vector register space (XbarIn / XbarOut /
    GPR, honoring each operand's [vec_width]) plus the scalar register
    file. Two passes over the {!Cfg}:

    - forward must-defined analysis: a register word read by an
      instruction before any write reaches it on every path is reported
      as [E-UBD] (error);
    - backward liveness: a write none of whose words is ever read again
      is reported as [W-DEADSTORE] (warning).

    The MVM instruction defines the XbarOut vectors of every MVMU in its
    mask and observes the matching XbarIn vectors for liveness only —
    elements past the staged operand are legitimately unwritten, so they
    are exempt from the def-before-use check.

    Unreachable instructions are skipped by both passes and summarized as
    [I-UNREACH] (info). Assumes the stream already passed
    {!Puma_isa.Check.diagnose}. *)

val analyze :
  layout:Puma_isa.Operand.layout ->
  tile:int ->
  core:int ->
  Puma_isa.Instr.t array ->
  Diag.t list
