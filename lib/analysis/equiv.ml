module Instr = Puma_isa.Instr
module Program = Puma_isa.Program
module Operand = Puma_isa.Operand
module Tensor = Puma_util.Tensor
module Fixed = Puma_util.Fixed

(* ---- The reference dataflow (built by Lgraph.to_reference) ---- *)

type rpiece = { src : int; src_off : int; piece_len : int; dst_off : int }

type rop =
  | R_input of { name : string; offset : int }
  | R_const of int array
  | R_mvm of { weights : Tensor.mat; label : string }
  | R_alu of Instr.alu_op
  | R_alui of { op : Instr.alu_op; imm : int }
  | R_gather of rpiece array
  | R_output of { name : string; offset : int }

type rnode = { op : rop; preds : int array; len : int }

type dataflow = rnode array

type verdict = Proved | Refuted | Unknown

type result = {
  verdict : verdict;
  diags : Diag.t list;
  output_words : int;
  mismatched_words : int;
  mvm_apps : int;
  steps : int;
}

(* ---- Hash-consed symbolic words ----

   Every value a register, shared-memory word or NoC packet word can hold
   is an interned id; structural equality of provenance DAGs is id
   equality. Copies (register moves, loads/stores, sends/receives) move
   ids around without interning anything, so the executor's cost is
   dominated by the instructions that actually compute. *)

type desc =
  | S_input of string * int  (* network input name, element index *)
  | S_const of int  (* raw 16-bit fixed-point word *)
  | S_undef of int  (* fresh unknown (reads of unmodelled sources) *)
  | S_vec of int array  (* an MVM argument vector, word ids *)
  | S_app of int * int  (* matrix id, argument S_vec id *)
  | S_elem of int * int  (* S_app id, output element *)
  | S_op1 of Instr.alu_op * int
  | S_op2 of Instr.alu_op * int * int

(* A crossbar-block matrix, interned by quantized content so float
   weights and Program_io's raw round trip unify. *)
type mat_info = {
  raws : int array;  (* row-major, rows * cols *)
  rows : int;
  cols : int;
  mutable label : string;
  zero_col : bool array;
  zero_row : bool array;
}

(* Minimal growable array (no Dynarray dependency). *)
module Grow = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 64 dummy; len = 0; dummy }

  let push g x =
    if g.len = Array.length g.data then begin
      let d = Array.make (2 * g.len) g.dummy in
      Array.blit g.data 0 d 0 g.len;
      g.data <- d
    end;
    g.data.(g.len) <- x;
    g.len <- g.len + 1;
    g.len - 1

  let get g i = g.data.(i)
end

type intern_state = {
  ids : (desc, int) Hashtbl.t;
  descs : desc Grow.t;
  taints : bool Grow.t;  (* does the word depend on an S_undef? *)
  mats : (int array * int * int, int) Hashtbl.t;
  mat_infos : mat_info Grow.t;
  mutable nonce : int;
  const0 : int;  (* set right after creation: intern (S_const 0) *)
}

let taint_of st = function
  | S_input _ | S_const _ -> false
  | S_undef _ -> true
  | S_vec ws -> Array.exists (fun w -> Grow.get st.taints w) ws
  | S_app (_, v) -> Grow.get st.taints v
  | S_elem (a, _) -> Grow.get st.taints a
  | S_op1 (_, a) -> Grow.get st.taints a
  | S_op2 (_, a, b) -> Grow.get st.taints a || Grow.get st.taints b

let intern st d =
  match Hashtbl.find_opt st.ids d with
  | Some id -> id
  | None ->
      let id = Grow.push st.descs d in
      let id' = Grow.push st.taints (taint_of st d) in
      assert (id = id');
      Hashtbl.add st.ids d id;
      id

let fresh_undef st =
  st.nonce <- st.nonce + 1;
  intern st (S_undef st.nonce)

let intern_state () =
  let st =
    {
      ids = Hashtbl.create 4096;
      descs = Grow.create (S_const 0);
      taints = Grow.create false;
      mats = Hashtbl.create 64;
      mat_infos =
        Grow.create
          {
            raws = [||];
            rows = 0;
            cols = 0;
            label = "";
            zero_col = [||];
            zero_row = [||];
          };
      nonce = 0;
      const0 = 0;
    }
  in
  let z = intern st (S_const 0) in
  assert (z = 0);
  st

let quantize f = Fixed.to_raw (Fixed.of_float f)

(* Intern a matrix by quantized content; content-equal blocks unify (the
   compiler may legitimately use either copy). [label] only sticks on
   first sight, so reference names win over program-side placeholders. *)
let intern_mat st ~label (m : Tensor.mat) =
  let raws = Array.map quantize m.Tensor.data in
  let key = (raws, m.Tensor.rows, m.Tensor.cols) in
  match Hashtbl.find_opt st.mats key with
  | Some id -> id
  | None ->
      let zero_col =
        Array.init m.Tensor.cols (fun j ->
            let all = ref true in
            for i = 0 to m.Tensor.rows - 1 do
              if raws.((i * m.Tensor.cols) + j) <> 0 then all := false
            done;
            !all)
      in
      let zero_row =
        Array.init m.Tensor.rows (fun i ->
            let all = ref true in
            for j = 0 to m.Tensor.cols - 1 do
              if raws.((i * m.Tensor.cols) + j) <> 0 then all := false
            done;
            !all)
      in
      let id =
        Grow.push st.mat_infos
          { raws; rows = m.Tensor.rows; cols = m.Tensor.cols; label; zero_col;
            zero_row }
      in
      Hashtbl.add st.mats key id;
      id

(* The one shared MVM evaluator: both the reference dataflow and the
   program's Mvm instructions go through it, so canonicalization (words
   feeding all-zero columns contribute exactly 0 and are normalized away;
   all-zero rows produce exactly 0) is symmetric by construction. This is
   what makes the check insensitive to stale garbage left in XbarIn words
   beyond a block's live columns — while words under live columns still
   have to match. *)
let apply_mvm st ~mat (arg : int array) =
  let info = Grow.get st.mat_infos mat in
  let masked =
    Array.mapi (fun j w -> if info.zero_col.(j) then st.const0 else w) arg
  in
  let app = intern st (S_app (mat, intern st (S_vec masked))) in
  Array.init info.rows (fun i ->
      if info.zero_row.(i) then st.const0 else intern st (S_elem (app, i)))

(* ---- Rendering (diagnostic messages only; codes are the contract) ---- *)

let rec render st ~depth id =
  if depth <= 0 then "..."
  else
    match Grow.get st.descs id with
    | S_input (name, i) -> Printf.sprintf "%s[%d]" name i
    | S_const r -> Printf.sprintf "#%d" r
    | S_undef k -> Printf.sprintf "undef<%d>" k
    | S_vec ws ->
        let n = Array.length ws in
        let shown = min n 4 in
        let parts =
          Array.to_list
            (Array.init shown (fun i -> render st ~depth:(depth - 1) ws.(i)))
        in
        "<"
        ^ String.concat ", " parts
        ^ (if n > shown then Printf.sprintf ", ...+%d" (n - shown) else "")
        ^ ">"
    | S_app (m, v) ->
        Printf.sprintf "mvm[%s](%s)" (Grow.get st.mat_infos m).label
          (render st ~depth:(depth - 1) v)
    | S_elem (a, i) -> Printf.sprintf "%s[%d]" (render st ~depth a) i
    | S_op1 (op, a) ->
        Printf.sprintf "%s(%s)" (Instr.alu_op_name op)
          (render st ~depth:(depth - 1) a)
    | S_op2 (op, a, b) ->
        Printf.sprintf "%s(%s, %s)" (Instr.alu_op_name op)
          (render st ~depth:(depth - 1) a)
          (render st ~depth:(depth - 1) b)

let render st id = render st ~depth:4 id

(* ---- Bail-out discipline ----

   [Bail] aborts the whole check into [Unknown] (we cannot model the
   program soundly); [Trap] aborts into [Refuted] (the runtime would trap
   before producing outputs). Refutations from output comparison are
   collected normally. *)

exception Bail of Diag.t
exception Trap of Diag.t

let bail ?tile ?core ?pc fmt =
  Printf.ksprintf
    (fun m ->
      raise (Bail (Diag.warning ~code:"W-EQUIV-UNKNOWN" ?tile ?core ?pc "%s" m)))
    fmt

(* ---- Reference evaluation ---- *)

(* Evaluates the dataflow in index order (it is topologically sorted) and
   records, per (output name, element index), the expected word id. *)
let eval_reference st (df : dataflow) =
  let expected : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let vals = Array.make (Array.length df) [||] in
  Array.iteri
    (fun i (n : rnode) ->
      let pred k =
        if k >= Array.length n.preds then
          bail "reference node %d: missing predecessor %d" i k;
        let p = n.preds.(k) in
        if p < 0 || p >= i then
          bail "reference node %d: predecessor %d not topologically prior" i p;
        vals.(p)
      in
      let v =
        match n.op with
        | R_input { name; offset } ->
            Array.init n.len (fun j -> intern st (S_input (name, offset + j)))
        | R_const raws ->
            if Array.length raws < n.len then
              bail "reference node %d: constant shorter than its segment" i;
            Array.init n.len (fun j -> intern st (S_const raws.(j)))
        | R_mvm { weights; label } ->
            let mat = intern_mat st ~label weights in
            let info = Grow.get st.mat_infos mat in
            let arg = pred 0 in
            if Array.length arg > info.cols then
              bail "reference node %d: MVM argument wider than the block" i;
            let padded =
              Array.init info.cols (fun j ->
                  if j < Array.length arg then arg.(j) else st.const0)
            in
            let out = apply_mvm st ~mat padded in
            if Array.length out < n.len then
              bail "reference node %d: MVM output shorter than its segment" i;
            Array.sub out 0 n.len
        | R_alu op ->
            if Instr.alu_op_arity op = 1 then
              let a = pred 0 in
              Array.init n.len (fun j -> intern st (S_op1 (op, a.(j))))
            else
              let a = pred 0 and b = pred 1 in
              if Array.length a < n.len || Array.length b < n.len then
                bail "reference node %d: operands shorter than the segment" i;
              Array.init n.len (fun j -> intern st (S_op2 (op, a.(j), b.(j))))
        | R_alui { op; imm } ->
            let a = pred 0 in
            let c = intern st (S_const imm) in
            if Array.length a < n.len then
              bail "reference node %d: operand shorter than the segment" i;
            Array.init n.len (fun j -> intern st (S_op2 (op, a.(j), c)))
        | R_gather pieces ->
            let out = Array.make n.len st.const0 in
            Array.iter
              (fun { src; src_off; piece_len; dst_off } ->
                let s = pred src in
                if
                  src_off < 0 || piece_len < 0 || dst_off < 0
                  || src_off + piece_len > Array.length s
                  || dst_off + piece_len > n.len
                then bail "reference node %d: gather piece out of range" i;
                Array.blit s src_off out dst_off piece_len)
              pieces;
            out
        | R_output { name; offset } ->
            let a = pred 0 in
            if Array.length a < n.len then
              bail "reference node %d: output shorter than its segment" i;
            for j = 0 to n.len - 1 do
              Hashtbl.replace expected (name, offset + j) a.(j)
            done;
            a
      in
      if Array.length v < n.len then
        bail "reference node %d: produced %d of %d words" i (Array.length v)
          n.len;
      vals.(i) <- v)
    df;
  expected

(* ---- Symbolic machine state ---- *)

type stream = {
  s_tile : int;  (* position in the program's tile array *)
  s_core : int option;  (* None = tile control unit *)
  code : Instr.t array;
  mutable pc : int;
  mutable halted : bool;
}

type core_state = { regs : int array; sregs : int array }

type tile_state = {
  mem : int array;  (* word ids *)
  mem_state : int array;  (* -1 invalid, 0 sticky, n > 0 counted *)
  wr_core : int array;  (* last writer: -2 host, -1 TCU, >= 0 core *)
  wr_pc : int array;
  cores : core_state array;
}

type step = Stepped | Blocked | Halted_step

let check ?(fuel = 4_000_000) ~reference (p : Program.t) =
  let st = intern_state () in
  let steps = ref 0 in
  let mvm_apps = ref 0 in
  let diags = ref [] in
  let push_diag d = diags := d :: !diags in
  let unknowns = ref 0 in
  let body () =
    let expected = eval_reference st reference in
    let config = p.Program.config in
    let layout = Operand.layout config in
    let dim = config.Puma_hwmodel.Config.mvmu_dim in
    let nmvmus = config.Puma_hwmodel.Config.mvmus_per_core in
    let smem_words = config.Puma_hwmodel.Config.smem_bytes / 2 in
    let ntiles = Array.length p.Program.tiles in
    (* Send targets name tiles by [tile_index]; map back to positions. *)
    let tile_pos : (int, int) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun pos (tp : Program.tile_program) ->
        Hashtbl.replace tile_pos tp.Program.tile_index pos)
      p.Program.tiles;
    let tiles =
      Array.map
        (fun (tp : Program.tile_program) ->
          ignore tp;
          {
            mem = Array.make smem_words st.const0;
            mem_state = Array.make smem_words (-1);
            wr_core = Array.make smem_words (-2);
            wr_pc = Array.make smem_words (-1);
            cores =
              Array.init config.Puma_hwmodel.Config.cores_per_tile (fun _ ->
                  {
                    regs = Array.make layout.Operand.total st.const0;
                    sregs = Array.make Operand.num_scalar_regs 0;
                  });
          })
        p.Program.tiles
    in
    (* MVMU images, interned by quantized content. *)
    let images : (int * int * int, int) Hashtbl.t = Hashtbl.create 32 in
    Array.iteri
      (fun pos (tp : Program.tile_program) ->
        List.iter
          (fun (img : Program.mvmu_image) ->
            let label =
              Printf.sprintf "tile%d.core%d.mvmu%d" tp.Program.tile_index
                img.Program.core_index img.Program.mvmu_index
            in
            Hashtbl.replace images
              (pos, img.Program.core_index, img.Program.mvmu_index)
              (intern_mat st ~label img.Program.weights))
          tp.Program.mvmu_images)
      p.Program.tiles;
    (* Host writes: inputs symbolic, constants concrete raws (sticky). *)
    let host_write ~tile ~addr word =
      if tile < 0 || tile >= ntiles then
        bail "I/O binding names tile %d outside the program" tile;
      let ts = tiles.(tile) in
      if addr < 0 || addr >= smem_words then
        bail ~tile "I/O binding writes shared-memory word %d out of range" addr;
      ts.mem.(addr) <- word;
      ts.mem_state.(addr) <- 0;
      ts.wr_core.(addr) <- -2;
      ts.wr_pc.(addr) <- -1
    in
    List.iter
      (fun (b : Program.io_binding) ->
        for k = 0 to b.Program.length - 1 do
          host_write ~tile:b.Program.tile ~addr:(b.Program.mem_addr + k)
            (intern st (S_input (b.Program.name, b.Program.offset + k)))
        done)
      p.Program.inputs;
    List.iter
      (fun ((b : Program.io_binding), raws) ->
        for k = 0 to b.Program.length - 1 do
          let w = if k < Array.length raws then raws.(k) else 0 in
          host_write ~tile:b.Program.tile ~addr:(b.Program.mem_addr + k)
            (intern st (S_const w))
        done)
      p.Program.constants;
    (* NoC channels: per (destination tile position, fifo) in-order
       queues, plus the set of sender tiles for the soundness check. *)
    let channels : (int * int, int array Queue.t) Hashtbl.t =
      Hashtbl.create 16
    in
    let channel key =
      match Hashtbl.find_opt channels key with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add channels key q;
          q
    in
    let channel_senders : (int * int, int list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let note_sender key src =
      match Hashtbl.find_opt channel_senders key with
      | Some l -> if not (List.mem src !l) then l := src :: !l
      | None -> Hashtbl.add channel_senders key (ref [ src ])
    in
    (* Shared-memory access with the runtime's exact blocking rules: a
       counted word whose count reaches 0 becomes invalid again; a sticky
       (count-0) write stays valid forever. *)
    let smem_read ts ~addr ~width =
      if addr < 0 || width < 0 || addr + width > smem_words then None
      else begin
        let ok = ref true in
        for k = addr to addr + width - 1 do
          if ts.mem_state.(k) < 0 then ok := false
        done;
        if not !ok then None
        else begin
          let words = Array.sub ts.mem addr width in
          for k = addr to addr + width - 1 do
            if ts.mem_state.(k) > 0 then begin
              ts.mem_state.(k) <- ts.mem_state.(k) - 1;
              if ts.mem_state.(k) = 0 then ts.mem_state.(k) <- -1
            end
          done;
          Some words
        end
      end
    in
    let smem_write ts ~addr ~words ~count ~writer_core ~writer_pc =
      let width = Array.length words in
      if addr < 0 || addr + width > smem_words then
        bail "shared-memory write [%d, %d) out of range" addr (addr + width);
      if count < 0 then bail "negative consumer count %d" count;
      let blocked = ref false in
      if count > 0 then
        for k = addr to addr + width - 1 do
          if ts.mem_state.(k) > 0 then blocked := true
        done;
      if !blocked then false
      else begin
        Array.iteri
          (fun i w ->
            let k = addr + i in
            ts.mem.(k) <- w;
            ts.mem_state.(k) <- count;
            ts.wr_core.(k) <- writer_core;
            ts.wr_pc.(k) <- writer_pc)
          words;
        true
      end
    in
    (* ---- One symbolic step of a stream ---- *)
    let step_stream (s : stream) =
      if s.halted then Halted_step
      else if s.pc < 0 || s.pc >= Array.length s.code then begin
        s.halted <- true;
        Halted_step
      end
      else begin
        let tile = s.s_tile in
        let ts = tiles.(tile) in
        let here fmt =
          match s.s_core with
          | Some c -> bail ~tile ~core:c ~pc:s.pc fmt
          | None -> bail ~tile ~pc:s.pc fmt
        in
        let retire () =
          s.pc <- s.pc + 1;
          incr steps;
          Stepped
        in
        match s.s_core with
        | None -> (
            (* Tile control unit: send / receive / halt only. *)
            match s.code.(s.pc) with
            | Instr.Halt ->
                s.halted <- true;
                Halted_step
            | Instr.Send { mem_addr; fifo_id; target; vec_width } -> (
                match smem_read ts ~addr:mem_addr ~width:vec_width with
                | None ->
                    if mem_addr < 0 || mem_addr + vec_width > smem_words then
                      here "send reads shared memory out of range";
                    Blocked
                | Some words -> (
                    match Hashtbl.find_opt tile_pos target with
                    | None -> here "send targets tile %d outside the node" target
                    | Some dst ->
                        let key = (dst, fifo_id) in
                        note_sender key tile;
                        Queue.add words (channel key);
                        retire ()))
            | Instr.Receive { mem_addr; fifo_id; count; vec_width } -> (
                let key = (tile, fifo_id) in
                let q = channel key in
                if Queue.is_empty q then Blocked
                else
                  let words = Queue.peek q in
                  if Array.length words <> vec_width then
                    raise
                      (Trap
                         (Diag.error ~code:"E-EQUIV" ~tile ~pc:s.pc
                            "receive of width %d meets a %d-word packet on \
                             fifo %d: the runtime traps before producing \
                             outputs"
                            vec_width (Array.length words) fifo_id))
                  else if
                    smem_write ts ~addr:mem_addr ~words ~count
                      ~writer_core:(-1) ~writer_pc:s.pc
                  then begin
                    ignore (Queue.pop q);
                    retire ()
                  end
                  else Blocked)
            | _ -> here "non-send/receive instruction in a tile stream")
        | Some c ->
            if c >= Array.length ts.cores then
              here "core index %d outside the tile" c
            else begin
              let cs = ts.cores.(c) in
              let rd_range base width =
                if base < 0 || width < 0 || base + width > layout.Operand.total
                then here "register range [%d, %d) out of range" base
                    (base + width)
              in
              let sreg i =
                if i < 0 || i >= Operand.num_scalar_regs then
                  here "scalar register %d out of range" i;
                cs.sregs.(i)
              in
              let set_sreg i v =
                if i < 0 || i >= Operand.num_scalar_regs then
                  here "scalar register %d out of range" i;
                cs.sregs.(i) <- v
              in
              let resolve = function
                | Instr.Imm_addr a -> a
                | Instr.Sreg_addr s -> sreg s
              in
              match s.code.(s.pc) with
              | Instr.Halt ->
                  s.halted <- true;
                  Halted_step
              | Instr.Mvm { mask; filter = _; stride } ->
                  if mask lsr nmvmus <> 0 then
                    here "MVM mask activates a non-existent MVMU";
                  if stride < 0 || stride >= dim then
                    here "MVM stride %d outside [0, %d)" stride dim;
                  for m = 0 to nmvmus - 1 do
                    if mask land (1 lsl m) <> 0 then begin
                      incr mvm_apps;
                      let xin = Operand.xbar_in layout ~mvmu:m ~elem:0 in
                      let xout = Operand.xbar_out layout ~mvmu:m ~elem:0 in
                      let arg =
                        Array.init dim (fun j ->
                            cs.regs.(xin + ((j + stride) mod dim)))
                      in
                      let out =
                        match Hashtbl.find_opt images (tile, c, m) with
                        | Some mat -> apply_mvm st ~mat arg
                        | None ->
                            (* Unprogrammed crossbar: exactly zero. *)
                            Array.make dim st.const0
                      in
                      Array.blit out 0 cs.regs xout dim
                    end
                  done;
                  retire ()
              | Instr.Alu { op; dest; src1; src2; vec_width } ->
                  (match op with
                  | Instr.Subsample ->
                      rd_range src1 (2 * vec_width);
                      rd_range dest vec_width;
                      for k = 0 to vec_width - 1 do
                        cs.regs.(dest + k) <- cs.regs.(src1 + (2 * k))
                      done
                  | Instr.Rand ->
                      rd_range dest vec_width;
                      for k = 0 to vec_width - 1 do
                        cs.regs.(dest + k) <- fresh_undef st
                      done
                  | _ when Instr.alu_op_arity op = 1 ->
                      rd_range src1 vec_width;
                      rd_range dest vec_width;
                      for k = 0 to vec_width - 1 do
                        cs.regs.(dest + k) <-
                          intern st (S_op1 (op, cs.regs.(src1 + k)))
                      done
                  | _ ->
                      rd_range src1 vec_width;
                      rd_range src2 vec_width;
                      rd_range dest vec_width;
                      for k = 0 to vec_width - 1 do
                        cs.regs.(dest + k) <-
                          intern st
                            (S_op2 (op, cs.regs.(src1 + k), cs.regs.(src2 + k)))
                      done);
                  retire ()
              | Instr.Alui { op; dest; src1; imm; vec_width } ->
                  rd_range src1 vec_width;
                  rd_range dest vec_width;
                  let c_imm = intern st (S_const imm) in
                  (if Instr.alu_op_arity op = 1 then
                     for k = 0 to vec_width - 1 do
                       cs.regs.(dest + k) <-
                         intern st (S_op1 (op, cs.regs.(src1 + k)))
                     done
                   else
                     for k = 0 to vec_width - 1 do
                       cs.regs.(dest + k) <-
                         intern st (S_op2 (op, cs.regs.(src1 + k), c_imm))
                     done);
                  retire ()
              | Instr.Alu_int { op; dest; src1; src2 } ->
                  let a = sreg src1 and b = sreg src2 in
                  let v =
                    match op with
                    | Instr.Iadd -> a + b
                    | Instr.Isub -> a - b
                    | Instr.Ieq -> if a = b then 1 else 0
                    | Instr.Ine -> if a <> b then 1 else 0
                    | Instr.Igt -> if a > b then 1 else 0
                  in
                  set_sreg dest v;
                  retire ()
              | Instr.Set { dest; imm } ->
                  rd_range dest 1;
                  cs.regs.(dest) <- intern st (S_const imm);
                  retire ()
              | Instr.Set_sreg { dest; imm } ->
                  set_sreg dest imm;
                  retire ()
              | Instr.Copy { dest; src; vec_width } ->
                  rd_range src vec_width;
                  rd_range dest vec_width;
                  (* Overlap-safe like the hardware's element loop. *)
                  for k = 0 to vec_width - 1 do
                    cs.regs.(dest + k) <- cs.regs.(src + k)
                  done;
                  retire ()
              | Instr.Load { dest; addr; vec_width } -> (
                  let a = resolve addr in
                  match smem_read ts ~addr:a ~width:vec_width with
                  | None ->
                      if a < 0 || a + vec_width > smem_words then
                        here "load [%d, %d) outside shared memory" a
                          (a + vec_width);
                      Blocked
                  | Some words ->
                      rd_range dest vec_width;
                      Array.blit words 0 cs.regs dest vec_width;
                      retire ())
              | Instr.Store { src; addr; count; vec_width } ->
                  let a = resolve addr in
                  rd_range src vec_width;
                  let words = Array.sub cs.regs src vec_width in
                  if
                    smem_write ts ~addr:a ~words ~count ~writer_core:c
                      ~writer_pc:s.pc
                  then retire ()
                  else Blocked
              | Instr.Jmp { pc } ->
                  s.pc <- pc;
                  incr steps;
                  Stepped
              | Instr.Brn { op; src1; src2; pc } ->
                  let a = sreg src1 and b = sreg src2 in
                  let taken =
                    match op with
                    | Instr.Beq -> a = b
                    | Instr.Bne -> a <> b
                    | Instr.Blt -> a < b
                    | Instr.Bge -> a >= b
                  in
                  if taken then begin
                    s.pc <- pc;
                    incr steps;
                    Stepped
                  end
                  else retire ()
              | Instr.Send _ | Instr.Receive _ ->
                  here "tile instruction in a core stream"
            end
      end
    in
    (* ---- Round-robin run-until-blocked scheduling ---- *)
    let streams = ref [] in
    Array.iteri
      (fun pos (tp : Program.tile_program) ->
        if Array.length tp.Program.tile_code > 0 then
          streams :=
            {
              s_tile = pos;
              s_core = None;
              code = tp.Program.tile_code;
              pc = 0;
              halted = false;
            }
            :: !streams;
        Array.iteri
          (fun c code ->
            if Array.length code > 0 then
              streams :=
                { s_tile = pos; s_core = Some c; code; pc = 0; halted = false }
                :: !streams)
          tp.Program.core_code)
      p.Program.tiles;
    let streams = Array.of_list (List.rev !streams) in
    let all_halted () = Array.for_all (fun s -> s.halted) streams in
    let progress = ref true in
    while (not (all_halted ())) && !progress && !steps < fuel do
      progress := false;
      Array.iter
        (fun s ->
          let continue_ = ref true in
          while !continue_ && !steps < fuel do
            match step_stream s with
            | Stepped -> progress := true
            | Blocked | Halted_step -> continue_ := false
          done)
        streams
    done;
    if !steps >= fuel then
      bail "fuel exhausted after %d instructions (raise ?fuel)" !steps;
    if not (all_halted ()) then begin
      (* Wedged: every unfinished stream is blocked. A real execution
         blocks the same way — outputs are never produced. *)
      let blocked =
        Array.to_list streams
        |> List.filter (fun s -> not s.halted)
        |> List.map (fun s ->
               match s.s_core with
               | Some c ->
                   Printf.sprintf "tile %d core %d pc %d" s.s_tile c s.pc
               | None -> Printf.sprintf "tile %d tcu pc %d" s.s_tile s.pc)
      in
      let shown = List.filteri (fun i _ -> i < 4) blocked in
      let first = List.find (fun s -> not s.halted) (Array.to_list streams) in
      push_diag
        (Diag.error ~code:"E-EQUIV" ~tile:first.s_tile ?core:first.s_core
           ~pc:first.pc
           "symbolic execution wedged with %d stream(s) blocked (%s%s): the \
            program can never produce its outputs"
           (List.length blocked)
           (String.concat "; " shown)
           (if List.length blocked > List.length shown then "; ..." else ""))
    end;
    (* Scheduler-dependent channel sharing voids the proof. *)
    Hashtbl.iter
      (fun (dst, fifo) senders ->
        if List.length !senders > 1 then begin
          incr unknowns;
          push_diag
            (Diag.warning ~code:"W-EQUIV-UNKNOWN" ~tile:dst
               "fifo %d is written by %d tiles; cross-sender arrival order \
                is scheduler-dependent, proof withheld"
               fifo (List.length !senders))
        end)
      channel_senders;
    (* ---- Compare program outputs against the reference ---- *)
    let got : (string * int, int * int * int * int) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun (b : Program.io_binding) ->
        if b.Program.tile < 0 || b.Program.tile >= ntiles then
          bail "output %s binds tile %d outside the program" b.Program.name
            b.Program.tile;
        let ts = tiles.(b.Program.tile) in
        for k = 0 to b.Program.length - 1 do
          let a = b.Program.mem_addr + k in
          if a < 0 || a >= smem_words then
            bail "output %s binds shared memory out of range" b.Program.name;
          if ts.mem_state.(a) >= 0 then
            Hashtbl.replace got
              (b.Program.name, b.Program.offset + k)
              (ts.mem.(a), b.Program.tile, ts.wr_core.(a), ts.wr_pc.(a))
        done)
      p.Program.outputs;
    let output_words = ref 0 in
    let mismatched = ref 0 in
    let per_output_reported : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let report_budget name =
      let n =
        Option.value ~default:0 (Hashtbl.find_opt per_output_reported name)
      in
      Hashtbl.replace per_output_reported name (n + 1);
      n < 3
    in
    let keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) expected []
      |> List.sort compare
    in
    List.iter
      (fun (name, idx) ->
        incr output_words;
        let want = Hashtbl.find expected (name, idx) in
        match Hashtbl.find_opt got (name, idx) with
        | None ->
            incr mismatched;
            if report_budget name then
              push_diag
                (Diag.error ~code:"E-EQUIV"
                   "output %s[%d] is never produced by the compiled program"
                   name idx)
        | Some (w, tile, wc, wpc) when w <> want ->
            incr mismatched;
            if report_budget name then
              if Grow.get st.taints w then begin
                incr unknowns;
                push_diag
                  (Diag.warning ~code:"W-EQUIV-UNKNOWN" ~tile
                     ?core:(if wc >= 0 then Some wc else None)
                     ?pc:(if wpc >= 0 then Some wpc else None)
                     "output %s[%d] depends on an undefined value (%s); \
                      equivalence cannot be decided"
                     name idx (render st w))
              end
              else
                push_diag
                  (Diag.error ~code:"E-EQUIV" ~tile
                     ?core:(if wc >= 0 then Some wc else None)
                     ?pc:(if wpc >= 0 then Some wpc else None)
                     "output %s[%d] computes %s but the source dataflow \
                      computes %s"
                     name idx (render st w) (render st want))
        | Some _ -> ())
      keys;
    (* Outputs the program writes but the source graph does not have. *)
    Hashtbl.iter
      (fun (name, idx) _ ->
        if not (Hashtbl.mem expected (name, idx)) then begin
          incr mismatched;
          if report_budget name then
            push_diag
              (Diag.error ~code:"E-EQUIV"
                 "compiled program produces output %s[%d] absent from the \
                  source dataflow"
                 name idx)
        end)
      got;
    Hashtbl.iter
      (fun name n ->
        if n > 3 then
          push_diag
            (Diag.info ~code:"I-EQUIV" "output %s: %d further mismatched words"
               name (n - 3)))
      per_output_reported;
    (!output_words, !mismatched)
  in
  let output_words, mismatched =
    try body () with
    | Bail d ->
        incr unknowns;
        push_diag d;
        (0, 0)
    | Trap d ->
        push_diag d;
        (0, 1)
    | Invalid_argument m ->
        incr unknowns;
        push_diag
          (Diag.warning ~code:"W-EQUIV-UNKNOWN"
             "symbolic execution aborted on a malformed program: %s" m);
        (0, 0)
  in
  let has_errors =
    List.exists (fun (d : Diag.t) -> d.Diag.severity = Diag.Error) !diags
  in
  let verdict =
    if has_errors then Refuted else if !unknowns > 0 then Unknown else Proved
  in
  (if verdict = Proved then
     let num_outputs =
       List.sort_uniq compare
         (List.map (fun (b : Program.io_binding) -> b.Program.name)
            p.Program.outputs)
       |> List.length
     in
     push_diag
       (Diag.info ~code:"I-EQUIV"
          "translation validated: %d output words across %d output(s) match \
           the source dataflow (%d MVM applications, %d instructions \
           executed)"
          output_words num_outputs !mvm_apps !steps));
  {
    verdict;
    diags = List.sort Diag.compare !diags;
    output_words;
    mismatched_words = mismatched;
    mvm_apps = !mvm_apps;
    steps = !steps;
  }
