(** Re-export of {!Puma_isa.Diag}: the diagnostics core lives next to the
    structural checker so both layers share one report type; analyzer
    passes refer to it as [Puma_analysis.Diag]. *)

include module type of struct
  include Puma_isa.Diag
end
