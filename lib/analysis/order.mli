(** Happens-before analysis: smem race and NoC reordering hazards.

    Builds the partial order induced by per-stream program order,
    single-writer shared-memory synchronization (reads block until the
    word's unique writer has produced it) and channel pairing (the k-th
    send on a single-sender fifo synchronizes with the k-th receive),
    then reports:

    - [E-RACE]: HB-unordered accesses to one shared-memory word from
      different streams with at least one write. Only multi-writer words
      (or host-initialized words also written at runtime) can race —
      single-writer words are ordered by the blocking read.
    - [E-FIFO-ORDER]: a (dst, fifo) channel whose receive pairing the
      NoC cannot be relied on to preserve: either sends from different
      streams with no HB order between them, or a single-sender channel
      whose in-flight pressure exceeds the receive-FIFO depth, where
      requeue-on-full ({!Puma_noc.Network.requeue}) can reorder packets.
      The pressure of the j-th send is [1 + #{i < j : NOT hb(recv_i,
      send_j)}]; when it never exceeds [fifo_depth], no delivery finds
      the FIFO full and arrival order equals send order.
    - [I-ORDER]: informational notes (control-flow approximation, size
      truncation) and, in dump mode, the HB graph's cross-stream edges.

    The analysis is exact for linear streams; streams with control flow
    are approximated by static instruction order (noted per stream). *)

type transfer = {
  xf_send_pc : int;  (** pc of the k-th send in the sender's stream. *)
  xf_recv_pc : int;  (** pc of the matching receive at the destination. *)
  xf_width : int;
}

type hazard = {
  hz_src : int;  (** The single sending tile. *)
  hz_dst : int;
  hz_fifo : int;
  hz_transfers : transfer array;  (** In pairing (program) order. *)
  hz_max_pressure : int;  (** Max in-flight packets; > [fifo_depth]. *)
}

val hazards : Puma_isa.Program.t -> hazard list
(** Single-sender matched channels whose pressure can exceed the FIFO
    depth — the repairable subset of [E-FIFO-ORDER], consumed by the
    compiler's sequencing pass. Empty when the HB graph is cyclic or too
    large to analyze. *)

val analyze : ?dump_hb:bool -> Puma_isa.Program.t -> Diag.t list
(** Run the analysis. [dump_hb] additionally emits the computed HB
    graph's summary and cross-stream edges as [I-ORDER] infos. *)
