module Check = Puma_isa.Check
module Operand = Puma_isa.Operand
module Program = Puma_isa.Program

type report = {
  diags : Diag.t list;
  errors : int;
  warnings : int;
  infos : int;
}

let make_report diags =
  let count sev =
    List.length (List.filter (fun (d : Diag.t) -> d.severity = sev) diags)
  in
  {
    diags;
    errors = count Diag.Error;
    warnings = count Diag.Warning;
    infos = count Diag.Info;
  }

let has_errors r = r.errors > 0

let program (p : Program.t) =
  let structural = Check.diagnose p in
  let has_structural_errors =
    List.exists (fun (d : Diag.t) -> d.severity = Diag.Error) structural
  in
  let diags =
    if has_structural_errors then
      structural
      @ [
          Diag.info ~code:"I-SKIP"
            "dataflow, shared-memory and channel analyses skipped: the \
             program is structurally invalid";
        ]
    else begin
      let layout = Operand.layout p.config in
      let regflow = ref [] in
      Array.iter
        (fun (tp : Program.tile_program) ->
          Array.iteri
            (fun core code ->
              if Array.length code > 0 then
                regflow :=
                  Regflow.analyze ~layout ~tile:tp.tile_index ~core code
                  :: !regflow)
            tp.core_code)
        p.tiles;
      structural
      @ List.concat (List.rev !regflow)
      @ Smem.analyze p @ Channel.analyze p
    end
  in
  make_report (List.sort Diag.compare diags)

let pp ppf r =
  if r.diags = [] then Format.fprintf ppf "no diagnostics@."
  else begin
    List.iter (fun d -> Format.fprintf ppf "%a@." Diag.pp d) r.diags;
    Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@." r.errors
      r.warnings r.infos
  end

let to_string r = Format.asprintf "%a" pp r

let to_json ?name r =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  (match name with
  | Some n -> Buffer.add_string buf (Printf.sprintf "\"name\":\"%s\"," (Diag.json_escape n))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "\"errors\":%d,\"warnings\":%d,\"infos\":%d,\"diagnostics\":["
       r.errors r.warnings r.infos);
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diag.to_json d))
    r.diags;
  Buffer.add_string buf "]}";
  Buffer.contents buf
