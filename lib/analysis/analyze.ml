module Check = Puma_isa.Check
module Operand = Puma_isa.Operand
module Program = Puma_isa.Program
module Json = Puma_util.Json

type report = {
  diags : Diag.t list;
  errors : int;
  warnings : int;
  infos : int;
}

let make_report diags =
  let count sev =
    List.length (List.filter (fun (d : Diag.t) -> d.severity = sev) diags)
  in
  {
    diags;
    errors = count Diag.Error;
    warnings = count Diag.Warning;
    infos = count Diag.Info;
  }

let has_errors r = r.errors > 0

(* Rewrite E-IMEM messages to name the source layers responsible, using
   the compiler's provenance map. Runs even on structurally invalid
   programs: an over-budget stream is exactly the case where the deep
   passes are skipped but attribution is most useful. *)
let attribute_imem ~layer_of (p : Program.t) diags =
  List.map
    (fun (d : Diag.t) ->
      match (d.code, d.loc.tile) with
      | "E-IMEM", Some tile ->
          let core = d.loc.core in
          let capacity =
            match core with
            | Some _ -> p.Program.config.Puma_hwmodel.Config.imem_core_bytes
            | None -> p.Program.config.Puma_hwmodel.Config.imem_tile_bytes
          in
          let breakdown = Resource.imem_breakdown ~layer_of p ~tile ~core in
          if breakdown = [] then d
          else
            {
              d with
              message =
                d.message ^ ": "
                ^ Resource.render_breakdown ~capacity breakdown;
            }
      | _ -> d)
    diags

let program ?(ranges = false) ?(resources = false) ?input_range
    ?(dump_ranges = false) ?(order = false) ?(dump_hb = false) ?equiv ?layer_of
    (p : Program.t) =
  let order = order || dump_hb in
  let structural = Check.diagnose p in
  let structural =
    match layer_of with
    | Some layer_of when resources -> attribute_imem ~layer_of p structural
    | _ -> structural
  in
  let has_structural_errors =
    List.exists (fun (d : Diag.t) -> d.severity = Diag.Error) structural
  in
  let diags =
    if has_structural_errors then
      structural
      @ [
          Diag.info ~code:"I-SKIP"
            "dataflow, shared-memory and channel analyses skipped: the \
             program is structurally invalid";
        ]
    else begin
      let layout = Operand.layout p.config in
      let regflow = ref [] in
      Array.iter
        (fun (tp : Program.tile_program) ->
          Array.iteri
            (fun core code ->
              if Array.length code > 0 then
                regflow :=
                  Regflow.analyze ~layout ~tile:tp.tile_index ~core code
                  :: !regflow)
            tp.core_code)
        p.tiles;
      structural
      @ List.concat (List.rev !regflow)
      @ Smem.analyze p @ Channel.analyze p
      @ (if order then Order.analyze ~dump_hb p else [])
      @ (if ranges then Range.analyze ?input_range ~dump_ranges p else [])
      @ (if resources then Resource.report (Resource.estimate p) else [])
    end
  in
  (* Translation validation runs even on structurally invalid programs
     (like imem attribution): the symbolic executor defends itself and
     degrades to W-EQUIV-UNKNOWN, and e.g. an over-budget stream (E-IMEM)
     is exactly where a semantic verdict is still meaningful. *)
  let diags =
    match equiv with
    | Some reference -> diags @ (Equiv.check ~reference p).Equiv.diags
    | None -> diags
  in
  make_report (List.sort Diag.compare diags)

let pp ppf r =
  if r.diags = [] then Format.fprintf ppf "no diagnostics@."
  else begin
    List.iter (fun d -> Format.fprintf ppf "%a@." Diag.pp d) r.diags;
    Format.fprintf ppf "%d error(s), %d warning(s), %d info(s)@." r.errors
      r.warnings r.infos
  end

let to_string r = Format.asprintf "%a" pp r

let json ?name r =
  let fields =
    (match name with Some n -> [ ("name", Json.String n) ] | None -> [])
    @ [
        ("errors", Json.Int r.errors);
        ("warnings", Json.Int r.warnings);
        ("infos", Json.Int r.infos);
        ("diagnostics", Json.List (List.map Diag.to_json r.diags));
      ]
  in
  Json.Obj fields

let to_json ?name r = Json.to_string (json ?name r)
