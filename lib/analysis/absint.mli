(** Generic worklist abstract interpreter over {!Cfg}.

    A dataflow/abstract-interpretation solver parametric in the abstract
    domain: chaotic iteration over basic blocks to a fixpoint, with
    optional widening for infinite-height domains. The register-dataflow
    ({!Regflow}), value-range ({!Range}) and resource ({!Resource})
    passes are all clients. *)

(** Compact bitset over the combined register space (one bit per vector
    register word, then one per scalar register). *)
module Bset : sig
  type t

  val create : int -> t
  (** [create n] is the empty set over a universe of [n] elements. *)

  val full : int -> t
  val copy : t -> t
  val equal : t -> t -> bool
  val get : t -> int -> bool
  val set : t -> int -> unit
  val clear : t -> int -> unit
  val inter_into : t -> t -> unit
  val union_into : t -> t -> unit

  val count : t -> int -> int
  (** [count b n] is the number of set elements below [n]. *)
end

type direction = Forward | Backward

module type DOMAIN = sig
  type state

  val copy : state -> state
  val equal : state -> state -> bool

  val join : state -> state -> state
  (** Least upper bound; may mutate and return its first argument. *)

  val widen : state -> state -> state
  (** [widen old next]: upper bound of both that guarantees termination
      on infinite-height domains. Finite-height domains can reuse
      {!join}. *)

  val transfer : pc:int -> state -> state
  (** Abstract effect of the instruction at [pc]; may mutate and return
      its argument (the solver always passes a private copy). *)
end

module Make (D : DOMAIN) : sig
  val solve :
    ?direction:direction ->
    ?widen_after:int ->
    entry:(unit -> D.state) ->
    Cfg.t ->
    D.state option array
  (** Fixpoint boundary state per block: the block's entry state under
      [Forward], the state at the block's end (join over successors)
      under [Backward]. [None] for blocks no contribution reaches
      (unreachable code). [entry] seeds the stream entry block under
      [Forward]; under [Backward] every block is seeded (exit edges are
      implicit in the CFG), so the boundary state must be neutral for
      [join] (true for the union-style backward domains used here).
      Widening kicks in once a block has been revisited more than
      [widen_after] times (default 3). *)
end
