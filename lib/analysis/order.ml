module Instr = Puma_isa.Instr
module Program = Puma_isa.Program

(* Happens-before analysis over the spatial program.

   Events are the synchronizing operations of every stream (each core
   plus the tile control unit of every tile): shared-memory accesses and
   channel sends/receives. The happens-before partial order is the
   transitive closure of
     - program order within a stream,
     - single-writer shared-memory synchronization (a read of a word
       blocks until its unique writer has produced it, whether the word
       is counted or persistent), and
     - channel pairing (the k-th send on a single-sender fifo is
       consumed by the k-th receive).
   All three edge kinds are sound orderings of the simulator, so any
   cycle means the program cannot run to completion; the channel
   deadlock pass reports those, and this pass bails out quietly.

   On top of the partial order we check:
     - [E-RACE]: two accesses to the same shared-memory word, at least
       one a write and not both from the same stream, that are
       HB-unordered. Single-writer words cannot race (the read blocks on
       the write); races arise only on multi-writer words or words both
       host-initialized and runtime-written.
     - [E-FIFO-ORDER]: per (dst, fifo) channel, either sends from
       different streams whose arrival order no HB path fixes (pairing
       is then timing-dependent), or a single-sender channel whose
       in-flight pressure can exceed the receive-FIFO depth. Pressure of
       the j-th send is 1 + #{i < j : NOT hb(recv_i, send_j)}: packets
       whose receive is not guaranteed to have retired when send_j
       issues. If every send's pressure is at most [fifo_depth] no
       delivery ever finds the FIFO full, the NoC never requeues, and
       per-channel arrival order equals send order; above the depth,
       requeue-on-full ([Puma_noc.Network.requeue]) can reorder packets
       and break the receive pairing (and, with mixed widths, crash the
       receive width check). *)

type access = { a_addr : int; a_width : int; a_write : bool }

type role =
  | Rsend of { fifo : int; target : int }
  | Rrecv of { fifo : int }
  | Rmem

type ev = {
  e_tile : int;
  e_core : int;  (* -1 = tile control unit *)
  e_pc : int;
  e_access : access option;
  e_role : role;
}

let describe (e : ev) =
  if e.e_core < 0 then Printf.sprintf "tile %d tcu pc %d" e.e_tile e.e_pc
  else Printf.sprintf "tile %d core %d pc %d" e.e_tile e.e_core e.e_pc

(* Streams are identified by (tile, core) with core = -1 for the TCU. *)
let stream_of (e : ev) = (e.e_tile, e.e_core)

type chan = {
  mutable c_sends : int list;  (* event ids, reversed *)
  mutable c_recvs : int list;  (* event ids, reversed *)
}

type build = {
  evs : ev array;
  succs : int list array;
  (* Cross-stream edges with a human-readable reason, for --dump-hb. *)
  cross : (int * int * string) list;
  chans : ((int * int) * chan) list;  (* keyed (dst tile, fifo), sorted *)
  (* Candidate race pairs (a < b, representative word); confirmed or
     dismissed once reachability is known. *)
  suspects : (int * int * int) list;
  notes : Diag.t list;
  with_cores : bool;
}

(* Beyond this many events the descendant bitsets get too large; we
   first retry with core smem events dropped (keeping channel analysis
   exact), then give up entirely. *)
let max_events = 16384

let collect ~with_cores (p : Program.t) =
  let evs = ref [] and n = ref 0 in
  let add e =
    evs := e :: !evs;
    incr n;
    !n - 1
  in
  let streams = ref [] and approx = ref [] in
  Array.iter
    (fun (tp : Program.tile_program) ->
      let tile = tp.tile_index in
      let ids = ref [] in
      (try
         Array.iteri
           (fun pc i ->
             match i with
             | Instr.Send { mem_addr; fifo_id; target; vec_width } ->
                 ids :=
                   add
                     {
                       e_tile = tile;
                       e_core = -1;
                       e_pc = pc;
                       e_access =
                         Some
                           { a_addr = mem_addr; a_width = vec_width; a_write = false };
                       e_role = Rsend { fifo = fifo_id; target };
                     }
                   :: !ids
             | Instr.Receive { mem_addr; fifo_id; vec_width; _ } ->
                 ids :=
                   add
                     {
                       e_tile = tile;
                       e_core = -1;
                       e_pc = pc;
                       e_access =
                         Some
                           { a_addr = mem_addr; a_width = vec_width; a_write = true };
                       e_role = Rrecv { fifo = fifo_id };
                     }
                   :: !ids
             | Instr.Halt -> raise Exit
             | _ -> ())
           tp.tile_code
       with Exit -> ());
      streams := List.rev !ids :: !streams;
      if with_cores then
        Array.iteri
          (fun core code ->
            let ids = ref [] in
            let has_cf =
              Array.exists
                (function Instr.Jmp _ | Instr.Brn _ -> true | _ -> false)
                code
            in
            if has_cf then approx := (tile, core) :: !approx;
            (try
               Array.iteri
                 (fun pc i ->
                   match i with
                   | Instr.Load { addr = Instr.Imm_addr a; vec_width; _ } ->
                       ids :=
                         add
                           {
                             e_tile = tile;
                             e_core = core;
                             e_pc = pc;
                             e_access =
                               Some
                                 { a_addr = a; a_width = vec_width; a_write = false };
                             e_role = Rmem;
                           }
                         :: !ids
                   | Instr.Store { addr = Instr.Imm_addr a; vec_width; _ } ->
                       ids :=
                         add
                           {
                             e_tile = tile;
                             e_core = core;
                             e_pc = pc;
                             e_access =
                               Some
                                 { a_addr = a; a_width = vec_width; a_write = true };
                             e_role = Rmem;
                           }
                         :: !ids
                   | Instr.Halt when not has_cf -> raise Exit
                   | _ -> ())
                 code
             with Exit -> ());
            streams := List.rev !ids :: !streams)
          tp.core_code)
    p.tiles;
  (Array.of_list (List.rev !evs), List.rev !streams, List.rev !approx)

let build_graph ~with_cores (p : Program.t) =
  let evs, streams, approx = collect ~with_cores p in
  let n = Array.length evs in
  if n > max_events then None
  else begin
    let succs = Array.make n [] in
    let cross = ref [] in
    let edge_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let add_edge ?reason a b =
      if a <> b && not (Hashtbl.mem edge_seen (a, b)) then begin
        Hashtbl.add edge_seen (a, b) ();
        succs.(a) <- b :: succs.(a);
        match reason with
        | Some r when stream_of evs.(a) <> stream_of evs.(b) ->
            cross := (a, b, r) :: !cross
        | _ -> ()
      end
    in
    (* Program order. *)
    List.iter
      (fun ids ->
        let rec link = function
          | a :: (b :: _ as rest) ->
              add_edge a b;
              link rest
          | _ -> []
        in
        ignore (link ids))
      streams;
    (* Shared-memory synchronization, per tile. *)
    let smem_words = p.config.Puma_hwmodel.Config.smem_bytes / 2 in
    let suspects = ref [] in
    let suspect_seen : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    let add_suspect a b word =
      let a, b = if a < b then (a, b) else (b, a) in
      if not (Hashtbl.mem suspect_seen (a, b)) then begin
        Hashtbl.add suspect_seen (a, b) ();
        suspects := (a, b, word) :: !suspects
      end
    in
    Array.iter
      (fun (tp : Program.tile_program) ->
        let tile = tp.tile_index in
        let host = Array.make smem_words false in
        let mark (b : Program.io_binding) =
          if b.tile = tile then
            for a = b.mem_addr to min (b.mem_addr + b.length) smem_words - 1 do
              host.(a) <- true
            done
        in
        List.iter mark p.inputs;
        List.iter (fun (b, _) -> mark b) p.constants;
        let writers = Array.make smem_words [] in
        let readers = Array.make smem_words [] in
        Array.iteri
          (fun id (e : ev) ->
            if e.e_tile = tile then
              match e.e_access with
              | Some { a_addr; a_width; a_write } ->
                  for a = a_addr to min (a_addr + a_width) smem_words - 1 do
                    if a >= 0 then
                      if a_write then writers.(a) <- id :: writers.(a)
                      else readers.(a) <- id :: readers.(a)
                  done
              | None -> ())
          evs;
        for a = 0 to smem_words - 1 do
          match (writers.(a), host.(a)) with
          | [], _ -> ()
          | [ w ], false ->
              (* Unique writer: every read of the word blocks until it. *)
              List.iter
                (fun r ->
                  add_edge ~reason:(Printf.sprintf "smem[%d]" a) w r)
                readers.(a)
          | ws, _ ->
              (* Multiple writers (or a host-initialized word overwritten
                 at runtime): blocking no longer pins which value a read
                 sees, so unordered access pairs are races. *)
              let rec pairs = function
                | [] -> ()
                | w :: rest ->
                    List.iter
                      (fun w' ->
                        if stream_of evs.(w) <> stream_of evs.(w') then
                          add_suspect w w' a)
                      rest;
                    pairs rest
              in
              pairs ws;
              List.iter
                (fun w ->
                  List.iter
                    (fun r ->
                      if stream_of evs.(w) <> stream_of evs.(r) then
                        add_suspect w r a)
                    readers.(a))
                ws
        done)
      p.tiles;
    (* Channel pairing. *)
    let chans : (int * int, chan) Hashtbl.t = Hashtbl.create 16 in
    let chan key =
      match Hashtbl.find_opt chans key with
      | Some c -> c
      | None ->
          let c = { c_sends = []; c_recvs = [] } in
          Hashtbl.add chans key c;
          c
    in
    Array.iteri
      (fun id (e : ev) ->
        match e.e_role with
        | Rsend { fifo; target } ->
            let c = chan (target, fifo) in
            c.c_sends <- id :: c.c_sends
        | Rrecv { fifo } ->
            let c = chan (e.e_tile, fifo) in
            c.c_recvs <- id :: c.c_recvs
        | Rmem -> ())
      evs;
    let chan_list =
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) chans []
      |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
    in
    List.iter
      (fun ((_, fifo), c) ->
        let sends = List.rev c.c_sends and recvs = List.rev c.c_recvs in
        let single_sender =
          match sends with
          | [] -> true
          | s :: rest ->
              List.for_all
                (fun s' -> stream_of evs.(s') = stream_of evs.(s))
                rest
        in
        if single_sender && List.length sends = List.length recvs then
          List.iter2
            (fun s r -> add_edge ~reason:(Printf.sprintf "fifo %d" fifo) s r)
            sends recvs)
      chan_list;
    let notes =
      List.rev_map
        (fun (tile, core) ->
          Diag.info ~code:"I-ORDER" ~tile ~core
            "stream has control flow; happens-before uses static \
             instruction order (approximate)")
        approx
      |> List.rev
    in
    Some
      {
        evs;
        succs;
        cross = List.rev !cross;
        chans = chan_list;
        suspects = List.rev !suspects;
        notes;
        with_cores;
      }
  end

(* ---- Reachability. ---- *)

type hb = { desc : int array array }

let bit_test a i = a.(i / 63) land (1 lsl (i mod 63)) <> 0

(* Kahn topological order; None on a cycle (real deadlock — reported by
   the channel pass — or an artifact of the static-order approximation
   on streams with control flow). *)
let topo_order (b : build) =
  let n = Array.length b.evs in
  let indeg = Array.make n 0 in
  Array.iter (List.iter (fun s -> indeg.(s) <- indeg.(s) + 1)) b.succs;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = Array.make n 0 in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    order.(!k) <- v;
    incr k;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      b.succs.(v)
  done;
  if !k = n then Some order else None

let reachability (b : build) order =
  let n = Array.length b.evs in
  let words = (n + 62) / 63 in
  let desc = Array.init n (fun _ -> Array.make words 0) in
  for k = n - 1 downto 0 do
    let v = order.(k) in
    let dv = desc.(v) in
    List.iter
      (fun s ->
        dv.(s / 63) <- dv.(s / 63) lor (1 lsl (s mod 63));
        let ds = desc.(s) in
        for w = 0 to words - 1 do
          dv.(w) <- dv.(w) lor ds.(w)
        done)
      b.succs.(v)
  done;
  { desc }

let hb_before (h : hb) a b = a <> b && bit_test h.desc.(a) b

(* ---- Channel hazards. ---- *)

type transfer = { xf_send_pc : int; xf_recv_pc : int; xf_width : int }

type hazard = {
  hz_src : int;
  hz_dst : int;
  hz_fifo : int;
  hz_transfers : transfer array;
  hz_max_pressure : int;
}

let width_of (e : ev) =
  match e.e_access with Some a -> a.a_width | None -> 0

(* Single-sender channels with matched send/receive counts whose
   in-flight pressure can exceed the FIFO depth. Also returns, per
   channel, the first HB-unordered send pair and the first such pair
   with differing widths (for diagnostics). *)
let overflow_channels (p : Program.t) (b : build) (h : hb) =
  let depth = p.config.Puma_hwmodel.Config.fifo_depth in
  List.filter_map
    (fun (((dst, fifo), c) : (int * int) * chan) ->
      let sends = Array.of_list (List.rev c.c_sends) in
      let recvs = Array.of_list (List.rev c.c_recvs) in
      let n = Array.length sends in
      let single_sender =
        n = 0
        || Array.for_all
             (fun s -> stream_of b.evs.(s) = stream_of b.evs.(sends.(0)))
             sends
      in
      if n = 0 || (not single_sender) || Array.length recvs <> n then None
      else begin
        let max_p = ref 0 and first_overflow = ref None in
        for j = 0 to n - 1 do
          let pressure = ref 1 in
          for i = 0 to j - 1 do
            if not (hb_before h recvs.(i) sends.(j)) then incr pressure
          done;
          if !pressure > !max_p then max_p := !pressure;
          if !pressure > depth && !first_overflow = None then
            first_overflow := Some j
        done;
        match !first_overflow with
        | None -> None
        | Some _ ->
            let unordered i j = not (hb_before h recvs.(i) sends.(j)) in
            let find_pair ~mismatch =
              let found = ref None in
              for j = 0 to n - 1 do
                for i = 0 to j - 1 do
                  if
                    !found = None && unordered i j
                    && ((not mismatch)
                       || width_of b.evs.(sends.(i))
                          <> width_of b.evs.(sends.(j)))
                  then found := Some (i, j)
                done
              done;
              !found
            in
            let transfers =
              Array.init n (fun k ->
                  {
                    xf_send_pc = b.evs.(sends.(k)).e_pc;
                    xf_recv_pc = b.evs.(recvs.(k)).e_pc;
                    xf_width = width_of b.evs.(sends.(k));
                  })
            in
            Some
              ( {
                  hz_src = b.evs.(sends.(0)).e_tile;
                  hz_dst = dst;
                  hz_fifo = fifo;
                  hz_transfers = transfers;
                  hz_max_pressure = !max_p;
                },
                find_pair ~mismatch:true,
                find_pair ~mismatch:false )
      end)
    b.chans

(* Channels fed by several streams: any pair of sends whose order no HB
   path fixes makes arrival order (and thus receive pairing)
   timing-dependent. *)
let unordered_sender_pairs (b : build) (h : hb) =
  List.filter_map
    (fun (((dst, fifo), c) : (int * int) * chan) ->
      let sends = Array.of_list (List.rev c.c_sends) in
      let multi =
        Array.length sends > 1
        && Array.exists
             (fun s -> stream_of b.evs.(s) <> stream_of b.evs.(sends.(0)))
             sends
      in
      if not multi then None
      else begin
        let found = ref None in
        Array.iteri
          (fun j sj ->
            for i = 0 to j - 1 do
              let si = sends.(i) in
              if
                !found = None
                && stream_of b.evs.(si) <> stream_of b.evs.(sj)
                && (not (hb_before h si sj))
                && not (hb_before h sj si)
              then found := Some (si, sj)
            done)
          sends;
        Option.map (fun pair -> (dst, fifo, pair)) !found
      end)
    b.chans

let prepare ~with_cores p =
  match build_graph ~with_cores p with
  | None -> Error None
  | Some b -> (
      match topo_order b with
      | None -> Error (Some b)
      | Some order -> Ok (b, reachability b order))

(* Build the graph, dropping core events if the full graph is too
   large. *)
let prepare_capped p =
  match prepare ~with_cores:true p with
  | Error None -> (
      match prepare ~with_cores:false p with
      | Error None -> `Too_large
      | Error (Some b) -> `Cyclic b
      | Ok (b, h) -> `Truncated (b, h))
  | Error (Some b) -> `Cyclic b
  | Ok (b, h) -> `Ok (b, h)

let hazards (p : Program.t) =
  match prepare_capped p with
  | `Too_large | `Cyclic _ -> []
  | `Ok (b, h) | `Truncated (b, h) ->
      List.map (fun (hz, _, _) -> hz) (overflow_channels p b h)

let analyze ?(dump_hb = false) (p : Program.t) =
  match prepare_capped p with
  | `Too_large ->
      [
        Diag.info ~code:"I-ORDER"
          "happens-before graph exceeds %d events; ordering analysis \
           skipped"
          max_events;
      ]
  | `Cyclic b ->
      b.notes
      @ [
          Diag.info ~code:"I-ORDER"
            "happens-before graph is cyclic (a wait cycle or a \
             control-flow approximation artifact); ordering analysis \
             skipped";
        ]
  | (`Ok (b, h) | `Truncated (b, h)) as r ->
      let depth = p.config.Puma_hwmodel.Config.fifo_depth in
      let truncated =
        match r with
        | `Truncated _ ->
            [
              Diag.info ~code:"I-ORDER"
                "happens-before graph exceeds %d events with core \
                 accesses; race detection skipped (channel analysis \
                 kept)"
                max_events;
            ]
        | _ -> []
      in
      let races =
        if not b.with_cores then []
        else
          List.map
            (fun (a, bb, word) ->
              let x = b.evs.(a) and y = b.evs.(bb) in
              Diag.error ~code:"E-RACE" ~tile:x.e_tile
                ?core:(if x.e_core >= 0 then Some x.e_core else None)
                ~pc:x.e_pc
                "%s and %s both touch smem[%d] with no happens-before \
                 order between them (at least one is a write): the value \
                 observed is timing-dependent"
                (describe x) (describe y) word)
            (List.filter
               (fun (a, bb, _) ->
                 (not (hb_before h a bb)) && not (hb_before h bb a))
               b.suspects)
      in
      let multi =
        List.map
          (fun (dst, fifo, (si, sj)) ->
            let x = b.evs.(si) and y = b.evs.(sj) in
            Diag.error ~code:"E-FIFO-ORDER" ~tile:dst
              "fifo %d receives sends from %s (width %d) and %s (width \
               %d) whose arrival order no happens-before path fixes; \
               per-message pairing is timing-dependent"
              fifo (describe x) (width_of x) (describe y) (width_of y))
          (unordered_sender_pairs b h)
      in
      let overflow =
        List.map
          (fun (hz, mismatch, any_pair) ->
            let t = hz.hz_transfers in
            match (mismatch, any_pair) with
            | Some (i, j), _ ->
                Diag.error ~code:"E-FIFO-ORDER" ~tile:hz.hz_dst
                  ~pc:t.(j).xf_recv_pc
                  "fifo %d from tile %d: up to %d packets in flight \
                   exceed the %d-deep receive FIFO, and the send at tile \
                   %d pc %d (width %d) is unordered with the send at \
                   tile %d pc %d (width %d): requeue-on-full can deliver \
                   them out of order and break the receive width contract"
                  hz.hz_fifo hz.hz_src hz.hz_max_pressure depth hz.hz_src
                  t.(i).xf_send_pc t.(i).xf_width hz.hz_src
                  t.(j).xf_send_pc t.(j).xf_width
            | None, Some (i, j) ->
                Diag.error ~code:"E-FIFO-ORDER" ~tile:hz.hz_dst
                  ~pc:t.(j).xf_recv_pc
                  "fifo %d from tile %d: up to %d packets in flight \
                   exceed the %d-deep receive FIFO (sends at pc %d and \
                   pc %d are unordered): requeue-on-full can reorder \
                   same-fifo packets and corrupt receive pairing"
                  hz.hz_fifo hz.hz_src hz.hz_max_pressure depth
                  t.(i).xf_send_pc t.(j).xf_send_pc
            | None, None ->
                (* Unreachable: an overflow implies an unordered pair. *)
                Diag.error ~code:"E-FIFO-ORDER" ~tile:hz.hz_dst
                  "fifo %d from tile %d: up to %d packets in flight \
                   exceed the %d-deep receive FIFO"
                  hz.hz_fifo hz.hz_src hz.hz_max_pressure depth)
          (overflow_channels p b h)
      in
      let dump =
        if not dump_hb then []
        else begin
          let cross_edges =
            List.map
              (fun (a, bb, reason) ->
                Diag.info ~code:"I-ORDER" "hb: %s -> %s (%s)"
                  (describe b.evs.(a))
                  (describe b.evs.(bb))
                  reason)
              b.cross
          in
          Diag.info ~code:"I-ORDER"
            "hb graph: %d events, %d cross-stream edges%s"
            (Array.length b.evs) (List.length b.cross)
            (if b.with_cores then "" else " (core accesses dropped)")
          :: cross_edges
        end
      in
      b.notes @ truncated @ races @ multi @ overflow @ dump
