(** Whole-program static analysis driver for compiled PUMA programs.

    Runs, in order: the structural checker ({!Puma_isa.Check.diagnose}),
    per-core register dataflow ({!Regflow}), shared tile-memory
    consumer-count analysis ({!Smem}), inter-tile channel / deadlock
    analysis ({!Channel}) and — opt-in — fixed-point value-range analysis
    ({!Range}) and static resource/cost estimation ({!Resource}). If the
    structural pass reports any error the semantic passes are skipped
    (and an [I-SKIP] info says so), since their preconditions do not hold
    on malformed programs; E-IMEM attribution still runs in that case
    when provenance is available.

    Diagnostics are sorted by location (tile, core, pc), then severity,
    then code. *)

type report = {
  diags : Diag.t list;
  errors : int;
  warnings : int;
  infos : int;
}

val program :
  ?ranges:bool ->
  ?resources:bool ->
  ?input_range:int * int ->
  ?dump_ranges:bool ->
  ?order:bool ->
  ?dump_hb:bool ->
  ?equiv:Equiv.dataflow ->
  ?layer_of:Resource.layer_of ->
  Puma_isa.Program.t ->
  report
(** [ranges] (default off) runs {!Range}; [input_range] and
    [dump_ranges] are forwarded to it. [resources] (default off) runs
    {!Resource.report} and, when [layer_of] provenance is supplied,
    appends a per-layer byte attribution to every [E-IMEM] message.
    [order] (default off) runs the happens-before pass ({!Order}:
    [E-RACE] / [E-FIFO-ORDER]); [dump_hb] additionally dumps the HB
    graph as [I-ORDER] infos (implies [order]). [equiv] (default off)
    runs the translation validator ({!Equiv}) against the given
    reference dataflow; unlike the other semantic passes it also runs on
    structurally invalid programs, degrading to [W-EQUIV-UNKNOWN] where
    the program cannot be modelled. *)

val has_errors : report -> bool

val make_report : Diag.t list -> report
(** Wrap an already-collected diagnostic list (counts severities). *)

val pp : Format.formatter -> report -> unit
(** One line per diagnostic plus a count summary; "no diagnostics" when
    the report is empty. *)

val to_string : report -> string

val json : ?name:string -> report -> Puma_util.Json.t
(** [{"name":..., "errors":n, "warnings":n, "infos":n,
    "diagnostics":[...]}]; ["name"] is included when given. *)

val to_json : ?name:string -> report -> string
(** {!json} rendered to a string. *)
