(** Whole-program static analysis driver for compiled PUMA programs.

    Runs, in order: the structural checker ({!Puma_isa.Check.diagnose}),
    per-core register dataflow ({!Regflow}), shared tile-memory
    consumer-count analysis ({!Smem}) and inter-tile channel / deadlock
    analysis ({!Channel}). If the structural pass reports any error the
    semantic passes are skipped (and an [I-SKIP] info says so), since
    their preconditions do not hold on malformed programs.

    Diagnostics are sorted by location (tile, core, pc), then severity,
    then code. *)

type report = {
  diags : Diag.t list;
  errors : int;
  warnings : int;
  infos : int;
}

val program : Puma_isa.Program.t -> report

val has_errors : report -> bool

val make_report : Diag.t list -> report
(** Wrap an already-collected diagnostic list (counts severities). *)

val pp : Format.formatter -> report -> unit
(** One line per diagnostic plus a count summary; "no diagnostics" when
    the report is empty. *)

val to_string : report -> string

val to_json : ?name:string -> report -> string
(** One JSON object: [{"name":..., "errors":n, "warnings":n, "infos":n,
    "diagnostics":[...]}]; [name] is included when given. *)
