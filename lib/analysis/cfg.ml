module Instr = Puma_isa.Instr

type block = {
  first : int;
  last : int;
  succs : int list;
}

type t = {
  code : Instr.t array;
  blocks : block array;
  block_of_pc : int array;
  reachable : bool array;
}

(* Successor pcs of the instruction at [pc]; edges to [len] (falling off
   the end of the stream) are the implicit exit and are dropped. *)
let instr_succs code pc =
  let len = Array.length code in
  let keep t = if t >= 0 && t < len then [ t ] else [] in
  match code.(pc) with
  | Instr.Halt -> []
  | Instr.Jmp { pc = target } -> keep target
  | Instr.Brn { pc = target; _ } ->
      let fall = keep (pc + 1) in
      let jump = keep target in
      (* Avoid a duplicate edge when the branch targets the next pc. *)
      if jump <> [] && fall <> [] && List.hd jump = List.hd fall then fall
      else jump @ fall
  | _ -> keep (pc + 1)

let build code =
  let len = Array.length code in
  if len = 0 then
    { code; blocks = [||]; block_of_pc = [||]; reachable = [||] }
  else begin
    (* Leaders: pc 0, every control-flow target, every fall-through point
       after a control-flow instruction. *)
    let leader = Array.make len false in
    leader.(0) <- true;
    Array.iteri
      (fun pc i ->
        match i with
        | Instr.Jmp _ | Instr.Brn _ | Instr.Halt ->
            if pc + 1 < len then leader.(pc + 1) <- true;
            List.iter (fun t -> leader.(t) <- true) (instr_succs code pc)
        | _ -> ())
      code;
    let block_of_pc = Array.make len 0 in
    let nblocks = ref 0 in
    for pc = 0 to len - 1 do
      if leader.(pc) && pc > 0 then incr nblocks;
      block_of_pc.(pc) <- !nblocks
    done;
    let nblocks = !nblocks + 1 in
    let bounds = Array.make nblocks (max_int, min_int) in
    for pc = 0 to len - 1 do
      let b = block_of_pc.(pc) in
      let lo, hi = bounds.(b) in
      bounds.(b) <- (min lo pc, max hi pc)
    done;
    let blocks =
      Array.map
        (fun (first, last) ->
          let succs =
            instr_succs code last
            |> List.map (fun t -> block_of_pc.(t))
            |> List.sort_uniq Stdlib.compare
          in
          { first; last; succs })
        bounds
    in
    let reachable = Array.make nblocks false in
    let rec visit b =
      if not reachable.(b) then begin
        reachable.(b) <- true;
        List.iter visit blocks.(b).succs
      end
    in
    visit 0;
    { code; blocks; block_of_pc; reachable }
  end

let num_blocks t = Array.length t.blocks

let preds t =
  let p = Array.make (num_blocks t) [] in
  Array.iteri
    (fun b blk -> List.iter (fun s -> p.(s) <- b :: p.(s)) blk.succs)
    t.blocks;
  p

let reachable_pc t pc =
  Array.length t.block_of_pc > pc && t.reachable.(t.block_of_pc.(pc))

let unreachable_pcs t =
  let acc = ref [] in
  Array.iteri
    (fun b blk ->
      if not t.reachable.(b) then
        for pc = blk.last downto blk.first do
          acc := pc :: !acc
        done)
    t.blocks;
  !acc
