(** Inter-tile communication analysis.

    Tile control streams are linear (no control flow), so their static
    send/receive order is exact. Two passes:

    - {b matching}: for every channel (destination tile, fifo id), the
      k-th send is paired with the k-th receive. Width mismatches are
      [E-CHANW], unmatched sends [E-SENDU], unmatched receives
      [E-RECVU]. When several tiles write one fifo the interleaving is
      dynamic, so pairing is skipped and [W-FIFOSHARE] (warning) is
      reported with a totals-only check.
    - {b deadlock}: abstract execution with non-blocking sends and
      blocking receives, run to a fixpoint. Any cycle in the resulting
      wait-for graph between wedged tiles is a true deadlock and is
      reported as [E-DEADLOCK] with the cycle's tiles, pcs and fifos. *)

val analyze : Puma_isa.Program.t -> Diag.t list
