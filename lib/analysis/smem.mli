(** Shared tile-memory consumer-count analysis.

    Statically mirrors the runtime discipline of
    {!Puma_tile.Shared_mem}: every word written with a consumer count
    [n > 0] must be read exactly [n] times, reads must be covered by some
    write (instruction, input/constant binding, or tile [Receive]), and
    output bindings must collect written words. The compiler's bump
    allocator gives each word a single static writer, so static read
    multiplicity equals dynamic consumption even inside the batch loop
    (the loop scales writes and reads together).

    Codes emitted:
    - [E-CONSUME] (error): a counted write's words are consumed by a
      different number of static loads/sends than its count;
    - [E-RBW] (error): a load, send, or output binding touches a word
      nothing writes;
    - [W-MULTIWRITE] (warning): several static writers share a word, so
      consumer counts cannot be checked there;
    - [I-DYNADDR] (info): the tile uses register-indirect addressing and
      its per-word checks are skipped. *)

val analyze : Puma_isa.Program.t -> Diag.t list
