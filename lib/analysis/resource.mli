(** Static per-core resource and cost estimation.

    Capacity accounting (instruction-memory budgets with per-layer
    attribution, liveness-based register-pressure high-water marks) and
    sound lower bounds on execution cost (cycles and dynamic energy)
    derived from the {!Puma_hwmodel} latency and energy models, with no
    simulation. The cycle bound is the cheapest terminating CFG path of
    the slowest stream, excluding the terminal instruction's occupancy
    (the simulator ends a stream at its final instruction's retire
    time); the simulator charges the same per-instruction latencies and
    only adds stalls, contention and loop trips on top, so
    [cycle_lower_bound <= simulated makespan] for every program
    (cross-validated by the [static_vs_sim] bench table and the property
    tests).

    Diagnostics from {!report}: [I-PRESSURE] per core stream (register
    and imem utilization), [I-COST] per program (the lower bounds). *)

type layer_of = tile:int -> core:int option -> pc:int -> string option
(** Compiler provenance: source-graph layer label of the instruction at
    [pc] of a stream ([core = None] is the tile control stream). *)

type pressure = {
  xin_hw : int;  (** Max simultaneously-live XbarIn words. *)
  xin_cap : int;
  xout_hw : int;
  xout_cap : int;
  gpr_hw : int;  (** Max simultaneously-live register-file words. *)
  gpr_cap : int;
  sreg_hw : int;
}

type stream = {
  tile : int;
  core : int option;  (** [None] for the tile control unit stream. *)
  instrs : int;
  imem_bytes : int;  (** Encoded size ({!Puma_isa.Encode}). *)
  imem_capacity : int;
  min_cycles : int;  (** Cheapest terminating path, in cycles. *)
  min_energy_pj : float;  (** Dynamic energy along the cheapest path. *)
  pressure : pressure option;  (** [None] for tile streams. *)
}

type t = {
  streams : stream list;
  cycle_lower_bound : int;  (** Max over streams (they run concurrently). *)
  energy_lower_bound_pj : float;  (** Sum over streams. *)
}

val estimate : Puma_isa.Program.t -> t

val imem_breakdown :
  layer_of:layer_of ->
  Puma_isa.Program.t ->
  tile:int ->
  core:int option ->
  (string * int) list
(** Encoded bytes of one stream attributed to source-graph layer labels,
    largest first; instructions without provenance (batch-loop control,
    spills) land on ["(runtime)"]. *)

val render_breakdown : capacity:int -> (string * int) list -> string
(** One-line rendering of a breakdown for an over-budget stream
    ("… B over the … B budget; largest layers: …"). *)

val report : t -> Diag.t list
