module Program = Puma_isa.Program
module Instr = Puma_isa.Instr
module Fabric = Puma_noc.Fabric
module Network = Puma_noc.Network
module Energy = Puma_hwmodel.Energy
module Node = Puma_sim.Node
module Tile = Puma_tile.Tile
module Fixed = Puma_util.Fixed

(* Contiguous block split: node k owns global tile positions
   [k*stride, (k+1)*stride). Programs compiled with a cluster option are
   already padded to [nodes * tiles_per_node] tiles, so the blocks line
   up with the partitioner's placement; any other program splits at the
   balanced ceiling stride. *)
let split (program : Program.t) ~nodes =
  if nodes < 1 then invalid_arg "Cluster: nodes must be >= 1";
  let ntiles = Array.length program.Program.tiles in
  let stride = max 1 ((ntiles + nodes - 1) / nodes) in
  let shards =
    Array.init nodes (fun k ->
        let lo = min (k * stride) ntiles in
        let hi = min (lo + stride) ntiles in
        let owns (b : Program.io_binding) = b.tile >= lo && b.tile < hi in
        let localize (b : Program.io_binding) =
          { b with Program.tile = b.tile - lo }
        in
        {
          program with
          Program.tiles = Array.sub program.Program.tiles lo (hi - lo);
          inputs =
            List.filter_map
              (fun b -> if owns b then Some (localize b) else None)
              program.Program.inputs;
          outputs =
            List.filter_map
              (fun b -> if owns b then Some (localize b) else None)
              program.Program.outputs;
          constants =
            List.filter_map
              (fun (b, raw) -> if owns b then Some (localize b, raw) else None)
              program.Program.constants;
        })
  in
  (stride, shards)

let split_program program ~nodes = snd (split program ~nodes)

type t = {
  program : Program.t;
  config : Puma_hwmodel.Config.t;
  nodes : int;
  stride : int;
  fabric : Fabric.t;
  shards : Node.t array;
  shard_programs : Program.t array;
  network : Network.t;
  interconnect : Energy.t;
  mutable now : int;
  mutable total_cycles : int;
}

let create ?(nodes = 2) ?(topology = Fabric.Mesh2d) ?(zero_cost = false)
    ?(noise_seed = 42) ?node_faults (program : Program.t) =
  (match node_faults with
  | Some plans when Array.length plans <> nodes ->
      invalid_arg "Cluster.create: node_faults must have one slot per node"
  | Some _ | None -> ());
  let config = program.Program.config in
  let stride, shard_programs = split program ~nodes in
  let fabric =
    Fabric.create ~topology ~zero_cost ~nodes ~tiles_per_node:stride ()
  in
  let interconnect = Energy.create config in
  let network =
    Network.create ~fabric config ~energy:interconnect
      ~num_tiles:(max 1 (Array.length program.Program.tiles))
  in
  let shards =
    Array.mapi
      (fun k sp ->
        (* Each chip programs its crossbars from its own noise stream and
           its own fault plan — node k's devices are independent of node
           j's. The cluster loop is reference-style, so [fast] is moot,
           but pin it off for clarity. *)
        let faults =
          Option.bind node_faults (fun plans -> plans.(k))
        in
        Node.create ~noise_seed:(noise_seed + k) ?faults ~fast:false sp)
      shard_programs
  in
  {
    program;
    config;
    nodes;
    stride;
    fabric;
    shards;
    shard_programs;
    network;
    interconnect;
    now = 0;
    total_cycles = 0;
  }

let config t = t.config
let nodes t = t.nodes
let tiles_per_node t = t.stride
let fabric t = t.fabric
let cycles t = t.total_cycles
let shard t k = t.shards.(k)
let shard_program t k = t.shard_programs.(k)
let interconnect_energy t = t.interconnect

let deadlock_dump t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "Cluster: all live entities blocked at cycle %d (in flight %d, next \
        arrival %s)\n"
       t.now
       (Network.in_flight t.network)
       (match Network.next_arrival t.network with
       | Some a -> string_of_int a
       | None -> "none"));
  Array.iteri
    (fun k shard ->
      if not (Node.shard_all_halted shard) then
        Buffer.add_string buf
          (Printf.sprintf "  node %d not halted (tiles %d..%d)\n" k
             (k * t.stride)
             ((k * t.stride) + Node.num_tiles shard - 1)))
    t.shards;
  Buffer.contents buf

(* Global output assembly, mirroring [Node.read_outputs] fragment
   grouping exactly (same hashtable insertion sequence, so the same
   result order) with the tile lookup routed through the owning shard. *)
let read_outputs t =
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun (b : Program.io_binding) ->
      let frags =
        match Hashtbl.find_opt by_name b.name with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.add by_name b.name l;
            l
      in
      frags := b :: !frags)
    t.program.Program.outputs;
  Hashtbl.fold
    (fun name frags acc ->
      let total =
        List.fold_left
          (fun m (b : Program.io_binding) -> max m (b.offset + b.length))
          0 !frags
      in
      let out = Array.make total 0.0 in
      List.iter
        (fun (b : Program.io_binding) ->
          let k = Fabric.node_of t.fabric b.tile in
          let local = b.tile - (k * t.stride) in
          match
            Tile.host_read
              (Node.tile t.shards.(k) local)
              ~addr:b.mem_addr ~width:b.length
          with
          | None ->
              raise
                (Node.Deadlock
                   (Printf.sprintf
                      "output %s fragment at tile %d (node %d) never written"
                      name b.tile k))
          | Some raw ->
              Array.iteri
                (fun i v -> out.(b.offset + i) <- Fixed.to_float (Fixed.of_raw v))
                raw)
        !frags;
      (name, out) :: acc)
    by_name []

(* The cluster run loop: the monolithic reference loop's pass structure
   (drain, deliver, step — tiles in ascending global order — completion
   check, time advance) with the tile space striped across shards and
   all traffic on the one shared fabric-aware network. With a zero-cost
   fabric the event sequence is identical to [Node.run] on the unsplit
   program, which the differential suite pins bit for bit. *)
let run t ~inputs =
  Array.iter (fun shard -> Node.shard_begin_run shard ~inputs) t.shards;
  let start = t.now in
  let finished = ref false in
  while not !finished do
    if t.now - start > Node.cycle_cap then
      failwith "Cluster.run: cycle cap exceeded";
    let progress = ref false in
    Array.iter
      (fun shard ->
        if
          Node.shard_drain shard ~send:(fun ~src ~dst ~fifo ~payload ~issue ->
              Network.send t.network ~now:issue
                {
                  Network.src_tile = src;
                  dst_tile = dst;
                  fifo_id = fifo;
                  payload;
                  seq = 0 (* assigned by Network.send *);
                })
        then progress := true)
      t.shards;
    let rec deliver () =
      match Network.pop_arrived t.network ~now:t.now with
      | None -> ()
      | Some msg ->
          let k = Fabric.node_of t.fabric msg.Network.dst_tile in
          let local = msg.Network.dst_tile - (k * t.stride) in
          if
            Node.shard_deliver t.shards.(k) ~local_tile:local
              ~fifo:msg.Network.fifo_id ~src_tile:msg.Network.src_tile
              ~payload:msg.Network.payload
          then begin
            Network.confirm_delivered t.network msg;
            progress := true
          end
          else Network.requeue t.network ~now:t.now msg;
          deliver ()
    in
    deliver ();
    Array.iter
      (fun shard -> if Node.shard_step shard ~now:t.now then progress := true)
      t.shards;
    let all_halted = Array.for_all Node.shard_all_halted t.shards in
    if all_halted && Network.in_flight t.network = 0 then finished := true
    else if not !progress then begin
      let next =
        Array.fold_left
          (fun acc shard -> min acc (Node.shard_next_event shard ~now:t.now))
          max_int t.shards
      in
      let next =
        match Network.next_arrival t.network with
        | Some a when a > t.now -> min next a
        | Some _ | None -> next
      in
      if next = max_int then raise (Node.Deadlock (deadlock_dump t))
      else t.now <- next
    end
  done;
  let elapsed = t.now - start in
  t.total_cycles <- t.total_cycles + elapsed;
  Array.iter (fun shard -> Node.shard_add_cycles shard elapsed) t.shards;
  read_outputs t

(* Energy is kept exact by summing the integer per-category event counts
   across the shard ledgers and the interconnect ledger — never by adding
   the float accumulators, whose order differs between a split and a
   monolithic run. *)
let energy_counts t =
  List.map
    (fun cat ->
      let total =
        Array.fold_left
          (fun acc shard -> acc + Energy.count (Node.energy shard) cat)
          (Energy.count t.interconnect cat)
          t.shards
      in
      (cat, total))
    Energy.all_categories

let offchip_words t = Energy.count t.interconnect Energy.Offchip

let dynamic_energy_pj t =
  List.fold_left
    (fun acc (cat, n) ->
      if cat = Energy.Static then acc
      else acc +. (Float.of_int n *. Energy.per_event_pj t.config cat))
    0.0 (energy_counts t)

let finish_energy t = Array.iter Node.finish_energy t.shards

let total_energy_pj t =
  Array.fold_left
    (fun acc shard -> acc +. Energy.total_pj (Node.energy shard))
    (Energy.total_pj t.interconnect)
    t.shards

(* --- Per-node static gates ------------------------------------------- *)

type shard_report = {
  node : int;
  cross_out : int;
  cross_in : int;
  report : Puma_analysis.Analyze.report;
}

(* Distinct (src tile, dst tile, fifo) channels whose endpoints live on
   different nodes, from the whole program's send instructions. *)
let cross_channels (program : Program.t) ~nodes ~stride =
  let node_of tile = min (tile / stride) (nodes - 1) in
  let seen = Hashtbl.create 32 in
  let outs = Array.make nodes 0 and ins = Array.make nodes 0 in
  let scan_stream src_tile code =
    Array.iter
      (fun (i : Instr.t) ->
        match i with
        | Instr.Send { fifo_id; target; _ } ->
            let chan = (src_tile, target, fifo_id) in
            if
              node_of src_tile <> node_of target
              && not (Hashtbl.mem seen chan)
            then begin
              Hashtbl.add seen chan ();
              outs.(node_of src_tile) <- outs.(node_of src_tile) + 1;
              ins.(node_of target) <- ins.(node_of target) + 1
            end
        | _ -> ())
      code
  in
  Array.iteri
    (fun pos (tp : Program.tile_program) ->
      scan_stream pos tp.tile_code;
      Array.iter (fun code -> scan_stream pos code) tp.core_code)
    program.Program.tiles;
  (outs, ins)

let analyze_shards ~nodes (program : Program.t) =
  let stride, shard_programs = split program ~nodes in
  let outs, ins = cross_channels program ~nodes ~stride in
  Array.to_list
    (Array.mapi
       (fun k sp ->
         let report =
           if outs.(k) = 0 && ins.(k) = 0 then
             (* Channel-closed shard: the full single-node gate applies
                verbatim — structure, dataflow, ordering, ranges,
                resources. *)
             Puma_analysis.Analyze.program ~ranges:true ~resources:true
               ~order:true sp
           else
             (* Open cross-node channels make the shard unanalyzable in
                isolation (sends target tiles outside it; receives pair
                with remote sends), so the happens-before / FIFO-pressure
                guarantees come from the whole-program pass the compiler
                already ran. W-XNODE documents exactly that obstruction. *)
             Puma_analysis.Analyze.make_report
               [
                 Puma_analysis.Diag.warning ~code:"W-XNODE"
                   "node %d has %d outgoing / %d incoming cross-node \
                    channels; per-node analysis is limited to the \
                    whole-program compile-time gates (E-FIFO-ORDER, \
                    E-RACE, ranges) which already cover these streams"
                   k outs.(k) ins.(k);
               ]
         in
         { node = k; cross_out = outs.(k); cross_in = ins.(k); report })
       shard_programs)
