(** Multi-node scale-out: several {!Puma_sim.Node}s as one machine.

    A cluster splits a compiled program into contiguous per-node tile
    blocks (shards), runs every shard under one global clock, and routes
    all inter-tile traffic through one shared {!Puma_noc.Network} whose
    cross-node costs come from a {!Puma_noc.Fabric} — the same
    {!Puma_noc.Offchip} constants the analytical estimator uses.

    The run loop reproduces the monolithic reference loop's pass
    structure over the striped tile space, so a cluster with a zero-cost
    fabric is bit-identical (outputs, cycles, energy event counts) to
    {!Puma_sim.Node.run} on the unsplit program — the contract
    [test/test_cluster.ml] pins for the whole model zoo. Clusters always
    execute reference-style; the single-node fast path does not apply.

    See [docs/SCALEOUT.md]. *)

type t

val split_program : Puma_isa.Program.t -> nodes:int -> Puma_isa.Program.t array
(** Contiguous block split at stride [ceil(tiles / nodes)]: shard [k]
    keeps the global [tile_index]es of its tiles but rebases its I/O and
    constant bindings to local positions. Programs compiled with
    {!Puma_compiler.Compile.options.cluster} are padded so these blocks
    coincide with the partitioner's node assignment. *)

val create :
  ?nodes:int ->
  ?topology:Puma_noc.Fabric.topology ->
  ?zero_cost:bool ->
  ?noise_seed:int ->
  ?node_faults:Puma_xbar.Fault.plan option array ->
  Puma_isa.Program.t ->
  t
(** Split the program across [nodes] (default 2) chips connected by the
    given fabric topology (default [Mesh2d]). Each node programs its
    crossbars from its own noise stream ([noise_seed + k]) and its own
    entry of [node_faults] (length must equal [nodes]), modelling
    independent physical chips. *)

val run :
  t -> inputs:(string * float array) list -> (string * float array) list
(** One inference across the cluster: inject inputs into the owning
    shards, run the global event loop to completion, assemble outputs
    from all shards. Raises {!Puma_sim.Node.Deadlock} or [Failure] (cycle
    cap) like the single-node simulator. *)

val config : t -> Puma_hwmodel.Config.t
val nodes : t -> int

val tiles_per_node : t -> int
(** Global tile stride between consecutive nodes' blocks. *)

val fabric : t -> Puma_noc.Fabric.t

val cycles : t -> int
(** Global cycles elapsed in completed {!run} calls. *)

val shard : t -> int -> Puma_sim.Node.t
val shard_program : t -> int -> Puma_isa.Program.t

val interconnect_energy : t -> Puma_hwmodel.Energy.t
(** The ledger the shared network charges (NoC hops and off-chip link
    words); per-node compute energy lives in each shard's ledger. *)

val energy_counts : t -> (Puma_hwmodel.Energy.category * int) list
(** Per-category event counts summed over every shard ledger and the
    interconnect ledger — integers, so they compare exactly against a
    monolithic run regardless of how the ledgers were split. *)

val offchip_words : t -> int
(** Words that crossed chip-to-chip links (fabric hop-multiplied). *)

val dynamic_energy_pj : t -> float
(** Non-static energy derived from {!energy_counts}. *)

val finish_energy : t -> unit
(** Charge each shard's static energy for its occupied tiles over the
    cluster cycles (call once after the last {!run}). *)

val total_energy_pj : t -> float

(** {2 Per-node static gates} *)

type shard_report = {
  node : int;
  cross_out : int;  (** Distinct cross-node channels leaving this shard. *)
  cross_in : int;  (** Distinct cross-node channels entering it. *)
  report : Puma_analysis.Analyze.report;
}

val analyze_shards : nodes:int -> Puma_isa.Program.t -> shard_report list
(** Run the static gates shard by shard. A channel-closed shard (no
    cross-node channels) goes through the full {!Puma_analysis.Analyze}
    pipeline — structure, dataflow, happens-before, ranges, resources —
    exactly like a single-node program. A shard with open cross-node
    channels cannot be analyzed in isolation (its sends target remote
    tiles, its receives pair with remote sends): it reports the
    documented [W-XNODE] warning, deferring those streams to the
    whole-program compile-time gates that already cover them. *)
