module G = Puma_graph.Graph
module Tensor = Puma_util.Tensor

let segment_count ~dim len = (len + dim - 1) / dim

let seg_len ~dim len s =
  let remaining = len - (s * dim) in
  min dim remaining

let lower ~dim (g : G.t) =
  let lg = Lgraph.create ~dim in
  (* Source-graph node currently being lowered; every lowered node
     (including gather glue emitted by the window helpers) is tagged with
     it for layer-level provenance. *)
  let cur_src = ref (-1) in
  let add_node lg ~op ~preds ~len =
    Lgraph.add_node ~src:!cur_src lg ~op ~preds ~len
  in
  let ns = G.nodes g in
  (* segments.(graph_node_id) = lnode id per segment *)
  let segments = Array.make (Array.length ns) [||] in
  let segs_of id = segments.(id) in
  (* Assemble an arbitrary [offset, offset+len) window of a graph node's
     value as gather pieces over its segments. *)
  let window_pieces src_id offset len =
    let src_segs = segs_of src_id in
    let pieces = ref [] in
    let dst_off = ref 0 in
    let pos = ref offset in
    while !dst_off < len do
      let s = !pos / dim in
      let off_in_seg = !pos mod dim in
      let src_seg = src_segs.(s) in
      let seg_length = (Lgraph.node lg src_seg).Lgraph.len in
      let take = min (len - !dst_off) (seg_length - off_in_seg) in
      pieces := (src_seg, off_in_seg, take, !dst_off) :: !pieces;
      dst_off := !dst_off + take;
      pos := !pos + take
    done;
    List.rev !pieces
  in
  let emit_gather pieces len =
    (* Deduplicate sources, build the piece array with src indices. *)
    let srcs = ref [] in
    let src_index id =
      match List.assoc_opt id !srcs with
      | Some k -> k
      | None ->
          let k = List.length !srcs in
          srcs := (id, k) :: !srcs;
          k
    in
    let parr =
      Array.of_list
        (List.map
           (fun (src_seg, src_off, piece_len, dst_off) ->
             { Lgraph.src = src_index src_seg; src_off; piece_len; dst_off })
           pieces)
    in
    let preds =
      let a = Array.make (List.length !srcs) 0 in
      List.iter (fun (id, k) -> a.(k) <- id) !srcs;
      a
    in
    add_node lg ~op:(L_gather parr) ~preds ~len
  in
  (* A gather that is exactly one full segment is the identity. *)
  let window src_id offset len =
    match window_pieces src_id offset len with
    | [ (src_seg, 0, l, 0) ] when l = len && (Lgraph.node lg src_seg).Lgraph.len = len ->
        src_seg
    | pieces -> emit_gather pieces len
  in
  Array.iter
    (fun (n : G.node) ->
      cur_src := n.id;
      let k = segment_count ~dim n.len in
      let out =
        match n.op with
        | G.Input name ->
            Array.init k (fun s ->
                add_node lg
                  ~op:(L_input { name; offset = s * dim })
                  ~preds:[||] ~len:(seg_len ~dim n.len s))
        | G.Const_vec data ->
            Array.init k (fun s ->
                let l = seg_len ~dim n.len s in
                add_node lg
                  ~op:(L_const (Array.sub data (s * dim) l))
                  ~preds:[||] ~len:l)
        | G.Mvm { matrix } ->
            let m = (G.matrix g matrix).data in
            let row_blocks = segment_count ~dim m.Tensor.rows in
            let col_blocks = segment_count ~dim m.Tensor.cols in
            let in_segs = segs_of n.preds.(0) in
            Array.init row_blocks (fun r ->
                let out_len = seg_len ~dim m.Tensor.rows r in
                let partials =
                  Array.init col_blocks (fun c ->
                      let block =
                        Tensor.mat_sub_block m ~row:(r * dim) ~col:(c * dim)
                          ~rows:dim ~cols:dim
                      in
                      let slot =
                        Lgraph.add_slot lg ~matrix ~row_block:r ~col_block:c
                          ~block
                      in
                      add_node lg ~op:(L_mvm { slot })
                        ~preds:[| in_segs.(c) |] ~len:out_len)
                in
                Array.fold_left
                  (fun acc p ->
                    match acc with
                    | None -> Some p
                    | Some a ->
                        Some
                          (add_node lg ~op:(L_binop G.Add)
                             ~preds:[| a; p |] ~len:out_len))
                  None partials
                |> Option.get)
        | G.Binop op ->
            let a = segs_of n.preds.(0) and b = segs_of n.preds.(1) in
            Array.init k (fun s ->
                add_node lg ~op:(L_binop op) ~preds:[| a.(s); b.(s) |]
                  ~len:(seg_len ~dim n.len s))
        | G.Unop op ->
            let a = segs_of n.preds.(0) in
            Array.init k (fun s ->
                add_node lg ~op:(L_unop op) ~preds:[| a.(s) |]
                  ~len:(seg_len ~dim n.len s))
        | G.Immop op ->
            let a = segs_of n.preds.(0) in
            Array.init k (fun s ->
                add_node lg ~op:(L_immop op) ~preds:[| a.(s) |]
                  ~len:(seg_len ~dim n.len s))
        | G.Concat ->
            (* Segment s of the result windows across the concatenated
               sources. *)
            let sources = n.preds in
            let lens = Array.map (fun p -> ns.(p).len) sources in
            Array.init k (fun s ->
                let l = seg_len ~dim n.len s in
                let start = s * dim in
                (* Collect pieces across source boundaries. *)
                let pieces = ref [] in
                let dst_off = ref 0 in
                let pos = ref start in
                while !dst_off < l do
                  (* Find the source containing logical position !pos. *)
                  let rec locate i acc =
                    if !pos < acc + lens.(i) then (i, !pos - acc)
                    else locate (i + 1) (acc + lens.(i))
                  in
                  let src_i, off_in_src = locate 0 0 in
                  let take = min (l - !dst_off) (lens.(src_i) - off_in_src) in
                  List.iter
                    (fun (seg, so, pl, d) ->
                      pieces := (seg, so, pl, d + !dst_off) :: !pieces)
                    (window_pieces sources.(src_i) off_in_src take);
                  dst_off := !dst_off + take;
                  pos := !pos + take
                done;
                match List.rev !pieces with
                | [ (src_seg, 0, pl, 0) ]
                  when pl = l && (Lgraph.node lg src_seg).Lgraph.len = l ->
                    src_seg
                | pieces -> emit_gather pieces l)
        | G.Slice { offset } ->
            Array.init k (fun s ->
                let l = seg_len ~dim n.len s in
                window n.preds.(0) (offset + (s * dim)) l)
        | G.Output name ->
            let a = segs_of n.preds.(0) in
            Array.init k (fun s ->
                add_node lg
                  ~op:(L_output { name; offset = s * dim })
                  ~preds:[| a.(s) |] ~len:(seg_len ~dim n.len s))
      in
      segments.(n.id) <- out)
    ns;
  lg
