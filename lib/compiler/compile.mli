(** Compiler driver: high-level graph to PUMA program (Section 5).

    Runs tiling, hierarchical partitioning, global scheduling with MVM
    coalescing, and code generation with register allocation. Options
    toggle the individual optimizations so the Table 8 ablations can
    compare against the naive baselines. *)

type options = {
  partition_strategy : Partition.strategy;
  coalesce_mvms : bool;
  wrap_batch_loop : bool;
      (** Wrap each core stream in SFU-driven batch control flow (used for
          CNN workloads). *)
  optimize_graph : bool;
      (** Run {!Optimize} (CSE + DCE) before tiling (default on). *)
  analysis_gate : bool;
      (** Fail compilation when the post-codegen static analysis reports
          errors (default on). Turning it off still runs the analysis and
          records the report in {!result.analysis}. *)
  repair_ordering : bool;
      (** Run the {!Sequencing} repair pass on channels the
          happens-before analysis flags as reorderable (default on). A
          program with no flagged channel passes through byte-identical.
          Turning it off leaves any [E-FIFO-ORDER] for the analysis
          gate. *)
  check_equiv : bool;
      (** Run the translation validator ({!Puma_analysis.Equiv}) on the
          final program against the lowered dataflow (default on). Its
          diagnostics merge into {!result.analysis}, so a refuted
          compilation ([E-EQUIV]) trips the analysis gate. *)
  static_analysis : bool;
      (** Run the post-codegen static analysis passes (default on).
          Turning it off leaves {!result.analysis} empty and skips the
          gate — an escape hatch for full-size scale-out models whose
          whole-program fixpoints take minutes; the per-node gates
          ({!Puma_cluster.Cluster.analyze_shards}) still apply. *)
  cluster : Partition.cluster option;
      (** Partition across this many cluster nodes with the given scheme
          (default [None] — single node). The emitted program's tile
          array is padded to the full [nodes * tiles_per_node] global
          tile space so the runtime can split it at fixed strides. *)
}

val default_options : options

type result = {
  program : Puma_isa.Program.t;
  analysis : Puma_analysis.Analyze.report;
      (** Post-codegen static analysis report ({!Puma_analysis.Analyze}),
          including the value-range and resource passes. [compile] fails
          if it contains errors; warnings and infos are kept here for
          callers to surface. *)
  equiv : Puma_analysis.Equiv.result option;
      (** The translation-validation verdict ([None] when [check_equiv]
          is off). For a compilation that passed the default gate this is
          always [Some r] with [r.verdict = Proved]. *)
  equiv_reference : Puma_analysis.Equiv.dataflow;
      (** The reference dataflow extracted from the lowered graph
          ({!Lgraph.to_reference}) — always present, so callers can
          revalidate a saved/mutated program file against this model
          (the CLI's [analyze --equiv --reference]). *)
  layer_of : Puma_analysis.Resource.layer_of;
      (** Instruction-level provenance: the source-graph layer label
          (matrix / binding name, glue ops inheriting their nearest
          labelled predecessor's) each emitted instruction belongs to. *)
  sequencing_stats : Sequencing.stats;
      (** What the ordering repair pass did ({!Sequencing.no_repair}
          when [repair_ordering] is off or nothing was flagged). *)
  codegen_stats : Codegen.stats;
  optimize_stats : Optimize.stats option;
  edge_stats : Partition.edge_stats;
  num_mvm_nodes : int;  (** MVM operations before coalescing. *)
  num_mvm_instructions : int;  (** After coalescing. *)
  tiles_used : int;
  cores_used : int;
  mvmus_used : int;
  nodes_used : int;  (** Cluster nodes the placement spans. *)
  tiles_per_node : int;  (** Global tile stride between nodes. *)
}

val compile :
  ?options:options -> Puma_hwmodel.Config.t -> Puma_graph.Graph.t -> result

val usage : result -> Puma_isa.Usage.t
(** Static instruction mix of the compiled program (Figure 4). *)
