type options = {
  partition_strategy : Partition.strategy;
  coalesce_mvms : bool;
  wrap_batch_loop : bool;
  optimize_graph : bool;
  analysis_gate : bool;
}

let default_options =
  {
    partition_strategy = Locality;
    coalesce_mvms = true;
    wrap_batch_loop = false;
    optimize_graph = true;
    analysis_gate = true;
  }

type result = {
  program : Puma_isa.Program.t;
  analysis : Puma_analysis.Analyze.report;
  codegen_stats : Codegen.stats;
  optimize_stats : Optimize.stats option;
  edge_stats : Partition.edge_stats;
  num_mvm_nodes : int;
  num_mvm_instructions : int;
  tiles_used : int;
  cores_used : int;
  mvmus_used : int;
}

let compile ?(options = default_options) (config : Puma_hwmodel.Config.t) g =
  (match Puma_graph.Graph.validate g with
  | Ok () -> ()
  | Error e -> invalid_arg ("Compile.compile: invalid graph: " ^ e));
  let g, optimize_stats =
    if options.optimize_graph then begin
      let g', s = Optimize.run g in
      (match Puma_graph.Graph.validate g' with
      | Ok () -> ()
      | Error e -> failwith ("Compile.compile: optimizer produced an invalid graph: " ^ e));
      (g', Some s)
    end
    else (g, None)
  in
  let lg = Tiling.lower ~dim:config.mvmu_dim g in
  let part = Partition.partition config options.partition_strategy lg in
  let sched = Schedule.build ~coalesce:options.coalesce_mvms lg part in
  let program, codegen_stats =
    Codegen.generate config ~wrap_batch_loop:options.wrap_batch_loop g lg part
      sched
  in
  let num_mvm_nodes =
    Array.fold_left
      (fun acc (n : Lgraph.lnode) ->
        match n.op with
        | L_mvm _ -> acc + 1
        | L_input _ | L_const _ | L_binop _ | L_unop _ | L_immop _
        | L_gather _ | L_output _ ->
            acc)
      0 (Lgraph.nodes lg)
  in
  let analysis = Puma_analysis.Analyze.program program in
  if options.analysis_gate && Puma_analysis.Analyze.has_errors analysis then
    failwith
      (Format.asprintf
         "Compile.compile: generated program fails static analysis:@.%a"
         Puma_analysis.Analyze.pp analysis);
  {
    program;
    analysis;
    codegen_stats;
    optimize_stats;
    edge_stats = Partition.edge_stats part lg;
    num_mvm_nodes;
    num_mvm_instructions = Schedule.num_mvm_instructions sched;
    tiles_used = part.Partition.tiles_used;
    cores_used = part.Partition.cores_used;
    mvmus_used = Lgraph.num_slots lg;
  }

let usage result = Puma_isa.Usage.of_program result.program
