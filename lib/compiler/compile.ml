type options = {
  partition_strategy : Partition.strategy;
  coalesce_mvms : bool;
  wrap_batch_loop : bool;
  optimize_graph : bool;
  analysis_gate : bool;
  repair_ordering : bool;
  check_equiv : bool;
  static_analysis : bool;
  cluster : Partition.cluster option;
}

let default_options =
  {
    partition_strategy = Locality;
    coalesce_mvms = true;
    wrap_batch_loop = false;
    optimize_graph = true;
    analysis_gate = true;
    repair_ordering = true;
    check_equiv = true;
    static_analysis = true;
    cluster = None;
  }

type result = {
  program : Puma_isa.Program.t;
  analysis : Puma_analysis.Analyze.report;
  equiv : Puma_analysis.Equiv.result option;
  equiv_reference : Puma_analysis.Equiv.dataflow;
  layer_of : Puma_analysis.Resource.layer_of;
  sequencing_stats : Sequencing.stats;
  codegen_stats : Codegen.stats;
  optimize_stats : Optimize.stats option;
  edge_stats : Partition.edge_stats;
  num_mvm_nodes : int;
  num_mvm_instructions : int;
  tiles_used : int;
  cores_used : int;
  mvmus_used : int;
  nodes_used : int;
  tiles_per_node : int;
}

let compile ?(options = default_options) (config : Puma_hwmodel.Config.t) g =
  (match Puma_graph.Graph.validate g with
  | Ok () -> ()
  | Error e -> invalid_arg ("Compile.compile: invalid graph: " ^ e));
  let g, optimize_stats =
    if options.optimize_graph then begin
      let g', s = Optimize.run g in
      (match Puma_graph.Graph.validate g' with
      | Ok () -> ()
      | Error e -> failwith ("Compile.compile: optimizer produced an invalid graph: " ^ e));
      (g', Some s)
    end
    else (g, None)
  in
  let lg = Tiling.lower ~dim:config.mvmu_dim g in
  let part =
    Partition.partition ?cluster:options.cluster config
      options.partition_strategy lg
  in
  let sched = Schedule.build ~coalesce:options.coalesce_mvms lg part in
  let program, codegen_stats, provenance =
    Codegen.generate config ~wrap_batch_loop:options.wrap_batch_loop g lg part
      sched
  in
  (* Serialize channels the happens-before analysis flags as reorderable
     before the analysis gate sees the program (a no-op on clean code). *)
  let program, provenance, sequencing_stats =
    if options.repair_ordering then Sequencing.repair program ~provenance
    else (program, provenance, Sequencing.no_repair)
  in
  (* Cluster placements address the full node * tiles_per_node global tile
     space; pad the program with empty tiles so every node's block is
     complete and the runtime can split it at fixed strides (empty tiles
     halt immediately and cost nothing). *)
  let program =
    match options.cluster with
    | None -> program
    | Some _ ->
        let target =
          part.Partition.nodes_used * part.Partition.tiles_per_node
        in
        let have = Array.length program.Puma_isa.Program.tiles in
        if have >= target then program
        else
          let empty i =
            {
              Puma_isa.Program.tile_index = i;
              core_code =
                Array.init config.cores_per_tile (fun _ -> [||]);
              tile_code = [||];
              mvmu_images = [];
            }
          in
          {
            program with
            Puma_isa.Program.tiles =
              Array.init target (fun i ->
                  if i < have then program.Puma_isa.Program.tiles.(i)
                  else empty i);
          }
  in
  (* Layer labels per source-graph node: MVMs carry their matrix name,
     I/O nodes their binding name; glue ops (concat, slices, elementwise
     epilogues) inherit the label of their nearest labelled predecessor,
     so e.g. a conv layer's bias-add and activation count toward that
     layer. *)
  let layer_labels =
    let ns = Puma_graph.Graph.nodes g in
    let labels = Array.make (Array.length ns) None in
    Array.iter
      (fun (n : Puma_graph.Graph.node) ->
        labels.(n.id) <-
          (match n.op with
          | Puma_graph.Graph.Mvm { matrix } ->
              Some (Puma_graph.Graph.matrix g matrix).Puma_graph.Graph.mat_name
          | Input name | Output name -> Some name
          | Const_vec _ | Binop _ | Unop _ | Immop _ | Concat | Slice _ ->
              Array.fold_left
                (fun acc p -> if acc = None then labels.(p) else acc)
                None n.preds))
      ns;
    labels
  in
  let layer_of ~tile ~core ~pc =
    let src =
      match core with
      | Some c ->
          let cs = provenance.Codegen.core_src in
          if
            tile >= 0
            && tile < Array.length cs
            && c >= 0
            && c < Array.length cs.(tile)
            && pc >= 0
            && pc < Array.length cs.(tile).(c)
          then cs.(tile).(c).(pc)
          else -1
      | None ->
          let ts = provenance.Codegen.tile_src in
          if
            tile >= 0
            && tile < Array.length ts
            && pc >= 0
            && pc < Array.length ts.(tile)
          then ts.(tile).(pc)
          else -1
    in
    if src >= 0 && src < Array.length layer_labels then layer_labels.(src)
    else None
  in
  let num_mvm_nodes =
    Array.fold_left
      (fun acc (n : Lgraph.lnode) ->
        match n.op with
        | L_mvm _ -> acc + 1
        | L_input _ | L_const _ | L_binop _ | L_unop _ | L_immop _
        | L_gather _ | L_output _ ->
            acc)
      0 (Lgraph.nodes lg)
  in
  (* Translation validation: prove the emitted (and Sequencing-repaired)
     program computes the lowered dataflow. The reference is extracted
     regardless (it is cheap and callers revalidate saved program files
     against it); the check itself is gated by [check_equiv]. Its
     diagnostics merge into the analysis report so the analysis gate
     rejects miscompilations like any other error. *)
  let equiv_reference =
    let matrix_name m =
      (Puma_graph.Graph.matrix g m).Puma_graph.Graph.mat_name
    in
    Lgraph.to_reference ~matrix_name lg
  in
  let equiv =
    if options.check_equiv then
      Some (Puma_analysis.Equiv.check ~reference:equiv_reference program)
    else None
  in
  let analysis =
    if options.static_analysis then
      Puma_analysis.Analyze.program ~ranges:true ~resources:true ~order:true
        ~layer_of program
    else Puma_analysis.Analyze.make_report []
  in
  let analysis =
    match equiv with
    | Some e ->
        Puma_analysis.Analyze.make_report
          (List.sort Puma_analysis.Diag.compare
             (analysis.Puma_analysis.Analyze.diags @ e.Puma_analysis.Equiv.diags))
    | None -> analysis
  in
  if options.analysis_gate && Puma_analysis.Analyze.has_errors analysis then
    failwith
      (Format.asprintf
         "Compile.compile: generated program fails static analysis:@.%a"
         Puma_analysis.Analyze.pp analysis);
  {
    program;
    analysis;
    equiv;
    equiv_reference;
    layer_of;
    sequencing_stats;
    codegen_stats;
    optimize_stats;
    edge_stats = Partition.edge_stats part lg;
    num_mvm_nodes;
    num_mvm_instructions = Schedule.num_mvm_instructions sched;
    tiles_used = part.Partition.tiles_used;
    cores_used = part.Partition.cores_used;
    mvmus_used = Lgraph.num_slots lg;
    nodes_used = part.Partition.nodes_used;
    tiles_per_node = part.Partition.tiles_per_node;
  }

let usage result = Puma_isa.Usage.of_program result.program
