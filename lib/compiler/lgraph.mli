(** The lowered (tiled) graph: the compiler's working IR.

    Section 5.2 first step: tensors are divided into 2D tiles the size of
    one MVMU and vectors/operations are divided accordingly. Every lowered
    node produces a vector {e segment} of length at most the crossbar
    dimension. MVM nodes reference {e slots} — one slot per (matrix,
    row-block, column-block), each occupying exactly one physical MVMU;
    several MVM nodes may reference the same slot (weight reuse across
    time-steps executes serially on the same crossbars). *)

type lop =
  | L_input of { name : string; offset : int }
      (** Segment [offset, offset+len) of a network input. *)
  | L_const of float array  (** Constant segment, preloaded by the host. *)
  | L_mvm of { slot : int }  (** Single pred: the column input segment. *)
  | L_binop of Puma_graph.Graph.binop
  | L_unop of Puma_graph.Graph.unop
  | L_immop of Puma_graph.Graph.immop
  | L_gather of piece array
      (** Assemble a segment from pieces of predecessor segments; [preds]
          lists the distinct sources indexed by [piece.src]. *)
  | L_output of { name : string; offset : int }

and piece = { src : int; src_off : int; piece_len : int; dst_off : int }
(** [src] indexes into the node's [preds] array. *)

type lnode = { id : int; op : lop; preds : int array; len : int; src : int }
(** [src] is the source-graph node this lowered node was derived from
    ([-1] when synthesized without a source), threaded through codegen
    for layer-level provenance. *)

type slot = {
  slot_id : int;
  matrix : int;  (** Graph matrix id. *)
  row_block : int;
  col_block : int;
  block : Puma_util.Tensor.mat;  (** dim x dim, zero-padded. *)
}

type t

val create : dim:int -> t
val dim : t -> int
val add_slot :
  t -> matrix:int -> row_block:int -> col_block:int -> block:Puma_util.Tensor.mat -> int
(** Returns the existing slot id if (matrix, row, col) was already added. *)

val add_node : ?src:int -> t -> op:lop -> preds:int array -> len:int -> int
val nodes : t -> lnode array
val node : t -> int -> lnode
val num_nodes : t -> int
val slots : t -> slot array
val slot : t -> int -> slot
val num_slots : t -> int

val consumers : t -> int array array

val levels : t -> int array
(** Longest-path depth of each node from the sources. Nodes with equal
    level are guaranteed independent — the conservative independence test
    used by MVM coalescing. *)

val reverse_postorder : t -> int array
(** Global linearization order (Section 5.3): a reverse postorder that
    consumes values soon after production, computed over the whole graph
    at once so per-core subsequences are globally consistent (deadlock
    avoidance, Section 5.3.3). *)

val to_reference :
  matrix_name:(int -> string) -> t -> Puma_analysis.Equiv.dataflow
(** Extract the reference dataflow the translation validator
    ({!Puma_analysis.Equiv}) checks compiled programs against.
    [matrix_name] maps a graph matrix id to its name (for diagnostics).
    The op encodings and fixed-point immediates are re-derived here,
    independently of {!Codegen}, so a codegen mapping bug is refuted
    rather than reproduced on both sides. *)
