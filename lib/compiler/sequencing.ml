module Instr = Puma_isa.Instr
module Program = Puma_isa.Program
module Order = Puma_analysis.Order

(* Ordering repair (credit-based channel sequencing).

   The happens-before pass ([Puma_analysis.Order]) flags single-sender
   channels whose in-flight pressure can exceed the receive-FIFO depth:
   there the NoC's requeue-on-full can reorder packets and break the
   k-th-send/k-th-receive pairing (the rbm@dim64 crash). This pass
   restores a static depth bound with a credit loop per flagged channel
   (dst, fifo) with transfers t_0 .. t_{n-1} and FIFO depth d:

   - after receive r_k (k <= n-d-1) the destination sends a one-word
     credit token back to the sender on a dedicated ack fifo;
   - before send s_k (k >= d) the sender receives one credit.

   Send s_k then cannot issue until r_{k-d} has retired, so at most d
   packets are ever in flight, no delivery finds the FIFO full, and
   arrival order equals send order. The ack channel itself carries the
   same bound (credit i is consumed before s_{i+d}, which precedes
   r_{i+d} and therefore the (i+d)-th credit), so the repair introduces
   no new hazard; [Compile.compile] re-runs the analysis on the repaired
   program to confirm.

   Tokens are one-word messages: the destination reads a persistent
   host-written word (a constant binding added per destination tile) and
   the sender lands each credit in its own fresh persistent word, so the
   repair adds no shared-memory diagnostics.

   When the sender has no free receive fifo for the ack channel (e.g. an
   aggregator tile already receiving on every fifo), the pass falls back
   to fifo splitting: the channel's n transfers move round-robin onto
   ceil(n / depth) fifos free at the destination, so each subchannel
   keeps at most depth packets in flight. Splitting rewrites fifo ids in
   matched send/receive pairs and adds no instructions, but needs free
   destination fifos, which wide fan-in channels (rbm's 18-transfer
   aggregation) do not have — hence credits first.

   A program with no flagged channel is returned physically unchanged. *)

type stats = {
  channels_repaired : int;
  credits_inserted : int;  (** Ack send/receive pairs added. *)
  channels_split : int;
      (** Channels repaired by the fifo-splitting fallback (counted in
          [channels_repaired] too). *)
  channels_skipped : int;
      (** Flagged channels left unrepaired (no free ack fifo at the
          sender and not enough free fifos at the destination, or a tile
          memory is full). *)
}

let no_repair =
  {
    channels_repaired = 0;
    credits_inserted = 0;
    channels_split = 0;
    channels_skipped = 0;
  }

(* Smallest fifo id the tile never receives on, if any. *)
let free_fifo ~num_fifos used =
  let f = ref 0 in
  while !f < num_fifos && used.(!f) do
    incr f
  done;
  if !f < num_fifos then Some !f else None

let smem_high_water (p : Program.t) =
  let hw = Array.make (Array.length p.tiles) 0 in
  let bump tile a = if tile >= 0 && tile < Array.length hw then hw.(tile) <- max hw.(tile) a in
  Array.iteri
    (fun t (tp : Program.tile_program) ->
      let instr i =
        match i with
        | Instr.Load { addr = Instr.Imm_addr a; vec_width; _ }
        | Instr.Store { addr = Instr.Imm_addr a; vec_width; _ } ->
            bump t (a + vec_width)
        | Instr.Send { mem_addr; vec_width; _ }
        | Instr.Receive { mem_addr; vec_width; _ } ->
            bump t (mem_addr + vec_width)
        | _ -> ()
      in
      Array.iter (Array.iter instr) tp.core_code;
      Array.iter instr tp.tile_code)
    p.tiles;
  let binding (b : Program.io_binding) = bump b.tile (b.mem_addr + b.length) in
  List.iter binding p.inputs;
  List.iter binding p.outputs;
  List.iter (fun (b, _) -> binding b) p.constants;
  hw

type insertion = { at_pc : int; before : bool; ins : Instr.t }

let apply_insertions (code : Instr.t array) (prov : int array) inserts =
  let out_code = ref [] and out_prov = ref [] in
  let rest = ref inserts in
  let emit i src =
    out_code := i :: !out_code;
    out_prov := src :: !out_prov
  in
  Array.iteri
    (fun pc i ->
      let take f =
        let ins, keep = List.partition f !rest in
        rest := keep;
        List.iter (fun x -> emit x.ins (-1)) ins
      in
      take (fun x -> x.at_pc = pc && x.before);
      emit i (if pc < Array.length prov then prov.(pc) else -1);
      take (fun x -> x.at_pc = pc && not x.before))
    code;
  List.iter (fun x -> emit x.ins (-1)) !rest;
  ( Array.of_list (List.rev !out_code),
    Array.of_list (List.rev !out_prov) )

let repair (p : Program.t) ~(provenance : Codegen.provenance) =
  let hazards = Order.hazards p in
  if hazards = [] then (p, provenance, no_repair)
  else begin
    let config = p.config in
    let num_fifos = config.Puma_hwmodel.Config.num_fifos in
    let depth = config.Puma_hwmodel.Config.fifo_depth in
    let smem_words = config.Puma_hwmodel.Config.smem_bytes / 2 in
    let ntiles = Array.length p.tiles in
    let tile_slot = Hashtbl.create 8 in
    Array.iteri (fun i (tp : Program.tile_program) -> Hashtbl.replace tile_slot tp.tile_index i) p.tiles;
    (* Receive fifos already in use, per tile (by tile index). *)
    let used = Array.make_matrix ntiles num_fifos false in
    Array.iteri
      (fun slot (tp : Program.tile_program) ->
        Array.iter
          (function
            | Instr.Receive { fifo_id; _ }
              when fifo_id >= 0 && fifo_id < num_fifos ->
                used.(slot).(fifo_id) <- true
            | _ -> ())
          tp.tile_code)
      p.tiles;
    let hw = smem_high_water p in
    let inserts : insertion list ref array = Array.init ntiles (fun _ -> ref []) in
    (* In-place fifo retargets from the splitting fallback, keyed by
       original pc; applied before any insertions shift pcs. *)
    let rewrites : (int * Instr.t) list ref array =
      Array.init ntiles (fun _ -> ref [])
    in
    let new_constants = ref [] in
    (* One persistent token word per destination tile, shared by all its
       ack sends (single host writer, so no analysis noise). *)
    let token_addr = Hashtbl.create 4 in
    let repaired = ref 0 and credits = ref 0 and skipped = ref 0 in
    let split = ref 0 in
    let retarget slot pc fifo =
      let tp = p.Program.tiles.(slot) in
      let instr =
        match tp.Program.tile_code.(pc) with
        | Instr.Send s -> Instr.Send { s with fifo_id = fifo }
        | Instr.Receive r -> Instr.Receive { r with fifo_id = fifo }
        | i -> i
      in
      rewrites.(slot) := (pc, instr) :: !(rewrites.(slot))
    in
    (* Fallback when no ack fifo is free at the sender: spread the
       channel's transfers round-robin over ceil(n/depth) fifos free at
       the destination. Per-fifo subsequences keep the k-th-send /
       k-th-receive pairing (both sides move together, in order) and
       carry at most [depth] packets in flight each. *)
    let try_split (hz : Order.hazard) ~src_slot ~dst_slot n =
      let k_needed = (n + depth - 1) / depth in
      let free_d =
        List.filter
          (fun f -> not used.(dst_slot).(f))
          (List.init num_fifos Fun.id)
      in
      let avail = Array.of_list (hz.Order.hz_fifo :: free_d) in
      if Array.length avail < k_needed then false
      else begin
        Array.iteri
          (fun i (xf : Order.transfer) ->
            let f = avail.(i mod k_needed) in
            retarget src_slot xf.Order.xf_send_pc f;
            retarget dst_slot xf.Order.xf_recv_pc f)
          hz.hz_transfers;
        for i = 1 to k_needed - 1 do
          used.(dst_slot).(avail.(i)) <- true
        done;
        incr repaired;
        incr split;
        true
      end
    in
    let hazards =
      List.sort
        (fun (a : Order.hazard) (b : Order.hazard) ->
          Stdlib.compare (a.hz_dst, a.hz_fifo) (b.hz_dst, b.hz_fifo))
        hazards
    in
    List.iter
      (fun (hz : Order.hazard) ->
        let n = Array.length hz.hz_transfers in
        match
          ( Hashtbl.find_opt tile_slot hz.hz_src,
            Hashtbl.find_opt tile_slot hz.hz_dst )
        with
        | Some src_slot, Some dst_slot when n > depth -> (
            match free_fifo ~num_fifos used.(src_slot) with
            | None -> if not (try_split hz ~src_slot ~dst_slot n) then incr skipped
            | Some ack_fifo ->
                let n_credits = n - depth in
                (* Space: one credit landing word per ack at the sender,
                   plus (possibly) one token word at the destination. *)
                let need_token = not (Hashtbl.mem token_addr dst_slot) in
                if
                  hw.(src_slot) + n_credits > smem_words
                  || (need_token && hw.(dst_slot) + 1 > smem_words)
                then (if not (try_split hz ~src_slot ~dst_slot n) then incr skipped)
                else begin
                  used.(src_slot).(ack_fifo) <- true;
                  let token =
                    match Hashtbl.find_opt token_addr dst_slot with
                    | Some a -> a
                    | None ->
                        let a = hw.(dst_slot) in
                        hw.(dst_slot) <- a + 1;
                        Hashtbl.replace token_addr dst_slot a;
                        new_constants :=
                          ( {
                              Program.name =
                                Printf.sprintf "__order_token_%d" hz.hz_dst;
                              tile = hz.hz_dst;
                              mem_addr = a;
                              length = 1;
                              offset = 0;
                            },
                            [| 0 |] )
                          :: !new_constants;
                        a
                  in
                  for k = 0 to n_credits - 1 do
                    let landing = hw.(src_slot) in
                    hw.(src_slot) <- landing + 1;
                    (* Credit k: sent after r_k, consumed before s_{k+d}. *)
                    inserts.(dst_slot) :=
                      {
                        at_pc = hz.hz_transfers.(k).xf_recv_pc;
                        before = false;
                        ins =
                          Instr.Send
                            {
                              mem_addr = token;
                              fifo_id = ack_fifo;
                              target = hz.hz_src;
                              vec_width = 1;
                            };
                      }
                      :: !(inserts.(dst_slot));
                    inserts.(src_slot) :=
                      {
                        at_pc = hz.hz_transfers.(k + depth).xf_send_pc;
                        before = true;
                        ins =
                          Instr.Receive
                            {
                              mem_addr = landing;
                              fifo_id = ack_fifo;
                              count = 0;
                              vec_width = 1;
                            };
                      }
                      :: !(inserts.(src_slot));
                    incr credits
                  done;
                  incr repaired
                end)
        | _ -> incr skipped)
      hazards;
    let tile_src =
      Array.init ntiles (fun t ->
          if t < Array.length provenance.Codegen.tile_src then
            provenance.Codegen.tile_src.(t)
          else [||])
    in
    let tiles = Array.copy p.tiles in
    Array.iteri
      (fun slot ins_ref ->
        match (!ins_ref, !(rewrites.(slot))) with
        | [], [] -> ()
        | ins, rw ->
            let tp = tiles.(slot) in
            let base = Array.copy tp.Program.tile_code in
            List.iter (fun (pc, i) -> base.(pc) <- i) rw;
            let code, prov =
              apply_insertions base tile_src.(slot) (List.rev ins)
            in
            tiles.(slot) <- { tp with Program.tile_code = code };
            tile_src.(slot) <- prov)
      inserts;
    let p' =
      {
        p with
        Program.tiles;
        constants = p.Program.constants @ List.rev !new_constants;
      }
    in
    let provenance' = { provenance with Codegen.tile_src } in
    ( p',
      provenance',
      {
        channels_repaired = !repaired;
        credits_inserted = !credits;
        channels_split = !split;
        channels_skipped = !skipped;
      } )
  end
