type strategy = Locality | Random of int
type scheme = Pipelined | Sharded
type cluster = { nodes : int; scheme : scheme }

let scheme_name = function Pipelined -> "pipelined" | Sharded -> "sharded"

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "pipelined" | "pipeline" -> Some Pipelined
  | "sharded" | "shard" -> Some Sharded
  | _ -> None

type place = { tile : int; core : int; node : int }

type t = {
  config : Puma_hwmodel.Config.t;
  slot_mvmu : (int * int * int) array;
  node_place : place array;
  tiles_used : int;
  cores_used : int;
  nodes_used : int;
  tiles_per_node : int;
}

(* Assign each position of the packing order to a cluster node.

   Pipelined: contiguous runs of the order (which is matrix-major under
   the locality strategy), broken preferentially at matrix boundaries
   once a node holds its balanced share, and forcibly at node capacity.
   Sharded: slots scatter by row block, so every matrix's output rows
   split across the nodes and each node computes a slice of every
   layer. *)
let assign_nodes lg order ~nodes ~scheme ~capacity =
  let num_slots = Array.length order in
  let node_of_pos = Array.make (max 1 num_slots) 0 in
  (match scheme with
  | Pipelined ->
      let target = (num_slots + nodes - 1) / nodes in
      let k = ref 0 and count = ref 0 in
      Array.iteri
        (fun i slot ->
          let new_group =
            i > 0
            &&
            let a = Lgraph.slot lg order.(i - 1) and b = Lgraph.slot lg slot in
            a.Lgraph.matrix <> b.Lgraph.matrix
          in
          if
            !k < nodes - 1
            && !count > 0
            && (!count >= capacity || (new_group && !count >= target))
          then begin
            incr k;
            count := 0
          end;
          node_of_pos.(i) <- !k;
          incr count)
        order
  | Sharded ->
      Array.iteri
        (fun i slot ->
          let s = Lgraph.slot lg slot in
          node_of_pos.(i) <- s.Lgraph.row_block mod nodes)
        order);
  let per_node = Array.make nodes 0 in
  Array.iteri
    (fun i _ ->
      let k = node_of_pos.(i) in
      per_node.(k) <- per_node.(k) + 1)
    order;
  Array.iteri
    (fun k used ->
      if used > capacity then
        failwith
          (Printf.sprintf
             "Partition: %s placement puts %d MVMUs on node %d but a node \
              holds %d; use more nodes"
             (scheme_name scheme) used k capacity))
    per_node;
  (node_of_pos, per_node)

let partition ?cluster (config : Puma_hwmodel.Config.t) strategy lg =
  let num_slots = Lgraph.num_slots lg in
  let mvmus_per_core = config.mvmus_per_core in
  let cores_per_tile = config.cores_per_tile in
  let capacity = Puma_hwmodel.Config.mvmus_per_node config in
  (* Models larger than one node spill onto further nodes (Section 3.2.5);
     tiles beyond [tiles_per_node] belong to node 1, 2, ... A hard cap
     catches runaway models that would swamp the functional simulator. *)
  let max_nodes = 64 in
  if num_slots > capacity * max_nodes then
    failwith
      (Printf.sprintf
         "Partition: model needs %d MVMUs but at most %d nodes (%d MVMUs) \
          are supported by the functional path"
         num_slots max_nodes (capacity * max_nodes));
  (match cluster with
  | Some { nodes; _ } when nodes < 1 ->
      invalid_arg "Partition: cluster nodes must be >= 1"
  | Some { nodes; _ } when num_slots > capacity * nodes ->
      failwith
        (Printf.sprintf
           "Partition: model needs %d MVMUs but %d nodes hold %d; use at \
            least %d nodes"
           num_slots nodes (capacity * nodes)
           ((num_slots + capacity - 1) / capacity))
  | Some _ | None -> ());
  (* Order slots, then pack sequentially into MVMUs -> cores -> tiles. *)
  let order = Array.init num_slots (fun i -> i) in
  (match strategy with
  | Locality ->
      (* Slots were created in (matrix, row-block, col-block) order by the
         tiler; sort to make the invariant explicit. *)
      let key i =
        let s = Lgraph.slot lg i in
        (s.Lgraph.matrix, s.Lgraph.row_block, s.Lgraph.col_block)
      in
      Array.sort (fun a b -> compare (key a) (key b)) order
  | Random seed ->
      let rng = Puma_util.Rng.create seed in
      Puma_util.Rng.shuffle rng order);
  let slot_mvmu = Array.make num_slots (0, 0, 0) in
  let mvmus_per_tile = mvmus_per_core * cores_per_tile in
  let nodes_used, tiles_per_node =
    match cluster with
    | None ->
        (* Sequential packing over the global tile space; tiles past
           [tiles_per_node] spill to further nodes implicitly. *)
        Array.iteri
          (fun pos slot ->
            let core_linear = pos / mvmus_per_core in
            let mvmu = pos mod mvmus_per_core in
            let tile = core_linear / cores_per_tile in
            let core = core_linear mod cores_per_tile in
            slot_mvmu.(slot) <- (tile, core, mvmu))
          order;
        let tiles = (num_slots + mvmus_per_tile - 1) / mvmus_per_tile in
        ((max 1 tiles + config.tiles_per_node - 1) / config.tiles_per_node,
         config.tiles_per_node)
    | Some { nodes; scheme } ->
        let node_of_pos, per_node =
          assign_nodes lg order ~nodes ~scheme ~capacity
        in
        (* Every node packs its own slots densely from its first tile;
           node k owns the contiguous global tile block [k*B, (k+1)*B). *)
        let stride =
          Array.fold_left
            (fun acc used ->
              max acc ((used + mvmus_per_tile - 1) / mvmus_per_tile))
            1 per_node
        in
        let local_pos = Array.make nodes 0 in
        Array.iteri
          (fun pos slot ->
            let k = node_of_pos.(pos) in
            let p = local_pos.(k) in
            local_pos.(k) <- p + 1;
            let core_linear = p / mvmus_per_core in
            let mvmu = p mod mvmus_per_core in
            let tile = (k * stride) + (core_linear / cores_per_tile) in
            let core = core_linear mod cores_per_tile in
            slot_mvmu.(slot) <- (tile, core, mvmu))
          order;
        (nodes, stride)
  in
  let node_of_tile tile = min (tile / tiles_per_node) (nodes_used - 1) in
  (* Place non-MVM nodes by demand, in reverse topological order. *)
  let ns = Lgraph.nodes lg in
  let cons = Lgraph.consumers lg in
  let node_place =
    Array.make (Array.length ns) { tile = 0; core = 0; node = 0 }
  in
  let assigned = Array.make (Array.length ns) false in
  let place_of_slot s =
    let tile, core, _ = slot_mvmu.(s) in
    { tile; core; node = node_of_tile tile }
  in
  (* First pass: MVM nodes are pinned to their slot's core, and partial-sum
     reductions (binops whose operands are all MVM outputs or earlier such
     reductions — the combine tree the tiler emits for multi-column-block
     matrices) are pinned next to their first operand. Reducing partials
     where they are produced mirrors the in-tile accumulation of the
     architecture; placing them by demand instead would funnel every
     partial of a wide layer into the one tile that consumes the final
     sums, overflowing its shared memory with remote copies. *)
  Array.iter
    (fun (n : Lgraph.lnode) ->
      match n.op with
      | L_mvm { slot } ->
          node_place.(n.id) <- place_of_slot slot;
          assigned.(n.id) <- true
      | L_binop _
        when Array.length n.preds > 0
             && Array.for_all (fun p -> assigned.(p)) n.preds ->
          (* Pin at the LAST operand — the fresh partial of the combine
             chain — so a reduction spanning several tiles walks from
             tile to tile shipping one accumulator value per hop, rather
             than pulling every partial into the first slot's tile (which
             would exceed its FIFO fan-in on wide layers). *)
          node_place.(n.id) <-
            node_place.(n.preds.(Array.length n.preds - 1));
          assigned.(n.id) <- true
      | L_input _ | L_const _ | L_binop _ | L_unop _ | L_immop _ | L_gather _
      | L_output _ ->
          ())
    ns;
  (* Demand placement, iterated to a fixpoint with two direction-aware
     passes. Elementwise compute (binop / unop / immop) and outputs
     follow their PRODUCERS: computing next to the inputs ships one
     result downstream instead of pulling every operand across the chip
     — on a partitioned LSTM this keeps the gate arithmetic on the node
     that computed the gates, so only the hidden-state segments cross
     the inter-node link. Marshalling nodes (gathers, inputs, constants)
     follow their CONSUMERS, landing next to the MVM core that reads
     them. A node whose producers are unplaceable (its inputs are model
     inputs placed by demand themselves) falls through to the consumer
     pass, so every connected node is eventually placed. *)
  let load = Hashtbl.create 64 in
  let load_of (p : place) =
    Option.value ~default:0 (Hashtbl.find_opt load (p.tile, p.core))
  in
  let bump (p : place) =
    Hashtbl.replace load (p.tile, p.core) (load_of p + 1)
  in
  (* Among the places of already-assigned consumers, prefer the core
     holding the fewest demand-placed nodes (ties broken on the place,
     keeping placement deterministic): always taking the first consumer
     would stack every segment of a wide value onto the same core. *)
  let best_consumer id =
    Array.fold_left
      (fun acc c ->
        if not assigned.(c) then acc
        else
          let p = node_place.(c) in
          match acc with
          | None -> Some p
          | Some q ->
              if (load_of p, p.tile, p.core) < (load_of q, q.tile, q.core)
              then Some p
              else acc)
      None cons.(id)
  in
  let first_pred (n : Lgraph.lnode) =
    Array.fold_left
      (fun acc p ->
        match acc with
        | Some _ -> acc
        | None -> if assigned.(p) then Some node_place.(p) else None)
      None n.preds
  in
  let follows_producer (n : Lgraph.lnode) =
    match n.op with
    | L_binop _ | L_unop _ | L_immop _ | L_output _ -> true
    | L_input _ | L_const _ | L_mvm _ | L_gather _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (n : Lgraph.lnode) ->
        if (not assigned.(n.id)) && follows_producer n then
          match first_pred n with
          | Some p ->
              node_place.(n.id) <- p;
              assigned.(n.id) <- true;
              bump p;
              changed := true
          | None -> ())
      ns;
    for id = Array.length ns - 1 downto 0 do
      if not assigned.(id) then begin
        match best_consumer id with
        | Some p ->
            node_place.(id) <- p;
            assigned.(id) <- true;
            bump p;
            changed := true
        | None -> ()
      end
    done
  done;
  (* Anything still unplaced is disconnected from every placed node (e.g.
     a graph with no MVMs at all): default to tile 0, core 0. *)
  Array.iter
    (fun (n : Lgraph.lnode) ->
      if not assigned.(n.id) then begin
        node_place.(n.id) <- { tile = 0; core = 0; node = 0 };
        assigned.(n.id) <- true
      end)
    ns;
  let tiles_used =
    Array.fold_left (fun acc p -> max acc (p.tile + 1)) 1 node_place
  in
  let cores_used =
    let seen = Hashtbl.create 32 in
    Array.iter (fun p -> Hashtbl.replace seen (p.tile, p.core) ()) node_place;
    Hashtbl.length seen
  in
  { config; slot_mvmu; node_place; tiles_used; cores_used; nodes_used;
    tiles_per_node }

let slot_place t s =
  let tile, core, _ = t.slot_mvmu.(s) in
  { tile; core; node = min (tile / t.tiles_per_node) (t.nodes_used - 1) }

let mvmu_of_slot t s =
  let _, _, m = t.slot_mvmu.(s) in
  m

type edge_stats = {
  intra_core : int;
  cross_core : int;
  cross_tile : int;
  cross_node : int;
}

let edge_stats t lg =
  let ns = Lgraph.nodes lg in
  let stats =
    ref { intra_core = 0; cross_core = 0; cross_tile = 0; cross_node = 0 }
  in
  Array.iter
    (fun (n : Lgraph.lnode) ->
      let dst = t.node_place.(n.id) in
      Array.iter
        (fun p ->
          let src = t.node_place.(p) in
          let s = !stats in
          stats :=
            (if src.tile <> dst.tile then
               { s with
                 cross_tile = s.cross_tile + 1;
                 cross_node =
                   (s.cross_node + if src.node <> dst.node then 1 else 0);
               }
             else if src.core <> dst.core then
               { s with cross_core = s.cross_core + 1 }
             else { s with intra_core = s.intra_core + 1 }))
        n.preds)
    ns;
  !stats
