(** Ordering repair: credit-based sequencing of hazardous channels.

    Consumes the happens-before analyzer's channel hazards
    ({!Puma_analysis.Order.hazards}: single-sender fifos whose in-flight
    pressure can exceed the receive-FIFO depth, where the NoC's
    requeue-on-full can reorder packets) and repairs each by threading a
    credit loop: the destination sends a one-word token back on a
    dedicated ack fifo after each receive, and the sender consumes one
    token before every send beyond the first [fifo_depth]. The repaired
    channel (and the ack channel itself) keeps at most [fifo_depth]
    packets in flight, so delivery never requeues and packet order is
    preserved; the re-run analysis reports zero [E-FIFO-ORDER].

    When the credit loop is infeasible (the sender has no free receive
    fifo for the ack channel, or a tile memory cannot fit the token
    words), the pass falls back to fifo splitting: the channel's [n]
    transfers are retargeted round-robin onto [ceil(n / fifo_depth)]
    fifos free at the destination, bounding each subchannel's in-flight
    pressure by the depth without adding any instruction.

    Programs with no flagged channel are returned physically unchanged
    (byte-identical). A flagged channel is skipped — counted in
    {!stats.channels_skipped}, leaving its [E-FIFO-ORDER] for the
    analysis gate — only when both strategies are infeasible. *)

type stats = {
  channels_repaired : int;
  credits_inserted : int;  (** Ack send/receive pairs added. *)
  channels_split : int;
      (** Channels repaired by the fifo-splitting fallback (counted in
          [channels_repaired] too). *)
  channels_skipped : int;
      (** Flagged channels left unrepaired (no free ack fifo at the
          sender and not enough free destination fifos, or a tile memory
          is full). *)
}

val no_repair : stats

val repair :
  Puma_isa.Program.t ->
  provenance:Codegen.provenance ->
  Puma_isa.Program.t * Codegen.provenance * stats
(** Inserted instructions carry provenance [-1] (runtime glue), like the
    batch-loop control flow. *)
