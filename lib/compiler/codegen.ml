module G = Puma_graph.Graph
module Instr = Puma_isa.Instr
module Operand = Puma_isa.Operand
module Program = Puma_isa.Program
module Fixed = Puma_util.Fixed

type stats = {
  num_loads : int;
  num_stores : int;
  num_sends : int;
  num_receives : int;
  spilled_fraction : float;
  smem_high_water : int;
  mvm_instructions : int;
  total_instructions : int;
}

(* Growable instruction buffer with a parallel provenance list: each
   pushed instruction is tagged with the source-graph node currently
   being emitted (set by the emission loop; -1 for runtime glue). *)
type buf = {
  mutable rev : Instr.t list;
  mutable srcs : int list;
  mutable count : int;
}

(* The graph node whose emission is in progress. A module-level ref so
   the spill code emitted from inside {!Regalloc} callbacks is tagged
   with the node that triggered the spill. *)
let emission_src = ref (-1)

let buf () = { rev = []; srcs = []; count = 0 }

let push b i =
  b.rev <- i :: b.rev;
  b.srcs <- !emission_src :: b.srcs;
  b.count <- b.count + 1

let to_array b = Array.of_list (List.rev b.rev)
let src_array b = Array.of_list (List.rev b.srcs)

type provenance = {
  core_src : int array array array;
      (** [core_src.(tile).(core).(pc)] = source-graph node id, -1 for
          runtime glue (batch-loop control, prologue). *)
  tile_src : int array array;  (** Same for tile control streams. *)
}

let conv_binop : G.binop -> Instr.alu_op = function
  | G.Add -> Instr.Add
  | G.Sub -> Sub
  | G.Mul -> Mul
  | G.Div -> Div
  | G.Min -> Min
  | G.Max -> Max

let conv_unop : G.unop -> Instr.alu_op = function
  | G.Relu -> Instr.Relu
  | G.Sigmoid -> Sigmoid
  | G.Tanh -> Tanh
  | G.Exp -> Exp
  | G.Log -> Log

let generate (config : Puma_hwmodel.Config.t) ~wrap_batch_loop (_g : G.t) lg
    (part : Partition.t) (sched : Schedule.t) =
  let layout = Operand.layout config in
  let ns = Lgraph.nodes lg in
  let nvals = Array.length ns in
  let items = sched.Schedule.items in
  let item_core = sched.Schedule.item_core in
  let nitems = Array.length items in
  let ntiles = max 1 part.Partition.tiles_used in
  let ncores = config.cores_per_tile in
  let home id =
    let p = part.Partition.node_place.(id) in
    (p.Partition.tile, p.Partition.core)
  in
  (* ---- Analysis pass A: consumer cores per value. ---- *)
  let cons = Lgraph.consumers lg in
  let consumer_cores =
    Array.init nvals (fun id ->
        let seen = Hashtbl.create 4 in
        Array.iter (fun c -> Hashtbl.replace seen (home c) ()) cons.(id);
        Hashtbl.fold (fun k () acc -> k :: acc) seen []
        |> List.sort compare)
  in
  let is_hosted id =
    match ns.(id).Lgraph.op with
    | L_input _ | L_const _ -> true
    | L_mvm _ | L_binop _ | L_unop _ | L_immop _ | L_gather _ | L_output _ ->
        false
  in
  let local_consumers id =
    let ht, hc = home id in
    List.filter
      (fun (t, c) -> t = ht && (c <> hc || is_hosted id))
      consumer_cores.(id)
  in
  let remote_tiles id =
    let ht, _ = home id in
    consumer_cores.(id)
    |> List.filter_map (fun (t, _) -> if t <> ht then Some t else None)
    |> List.sort_uniq compare
  in
  let remote_count id tile =
    List.length (List.filter (fun (t, _) -> t = tile) consumer_cores.(id))
  in
  (* Hosted values always get a shared-memory slot; computed values only
     when some other core consumes them. *)
  let needs_slot id =
    is_hosted id
    || local_consumers id <> []
    || remote_tiles id <> []
  in
  let home_count id =
    List.length (local_consumers id) + List.length (remote_tiles id)
  in
  (* ---- Shared-memory allocation. ---- *)
  let smem_ptr = Array.make ntiles 0 in
  let smem_words = config.smem_bytes / 2 in
  let alloc_smem tile len =
    let a = smem_ptr.(tile) in
    smem_ptr.(tile) <- a + len;
    if smem_ptr.(tile) > smem_words then
      failwith
        (Printf.sprintf
           "Codegen: tile %d shared memory overflow (%d words used of %d; \
            last allocation %d words)"
           tile smem_ptr.(tile) smem_words len);
    a
  in
  let home_addr = Array.make nvals (-1) in
  let remote_addr : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iter
    (fun (n : Lgraph.lnode) ->
      let id = n.id in
      if needs_slot id then begin
        let ht, _ = home id in
        home_addr.(id) <- alloc_smem ht n.len;
        List.iter
          (fun rt -> Hashtbl.replace remote_addr (id, rt) (alloc_smem rt n.len))
          (remote_tiles id)
      end)
    ns;
  (* ---- FIFO virtualization: one FIFO per sender tile per receiver. ---- *)
  let senders : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun (n : Lgraph.lnode) ->
      let ht, _ = home n.id in
      List.iter
        (fun rt ->
          let l =
            match Hashtbl.find_opt senders rt with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add senders rt l;
                l
          in
          if not (List.mem ht !l) then l := ht :: !l)
        (remote_tiles n.id))
    ns;
  let fifo_of ~src ~dst =
    let l = List.sort compare !(Hashtbl.find senders dst) in
    if List.length l > config.num_fifos then
      failwith
        (Printf.sprintf
           "Codegen: tile %d receives from %d tiles (%s) but only %d FIFOs \
            exist"
           dst (List.length l)
           (String.concat "," (List.map string_of_int l))
           config.num_fifos);
    let rec index k = function
      | [] -> assert false
      | x :: rest -> if x = src then k else index (k + 1) rest
    in
    index 0 l
  in
  (* ---- Buffers and per-core allocators. ---- *)
  let core_bufs = Array.init ntiles (fun _ -> Array.init ncores (fun _ -> buf ())) in
  let tile_bufs = Array.init ntiles (fun _ -> buf ()) in
  let regallocs =
    Array.init ntiles (fun t ->
        Array.init ncores (fun c ->
            Regalloc.create ~layout
              ~alloc_smem:(fun len -> alloc_smem t len)
              ~emit:(fun i -> push core_bufs.(t).(c) i)))
  in
  let alloc_of (t, c) = regallocs.(t).(c) in
  (* ---- Analysis pass B: use positions per (core, value). ---- *)
  let use_positions : (int * int * int, int list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let record (t, c) id pos =
    let key = (t, c, id) in
    match Hashtbl.find_opt use_positions key with
    | Some l -> l := pos :: !l
    | None -> Hashtbl.add use_positions key (ref [ pos ])
  in
  for pos = 0 to nitems - 1 do
    let tc = item_core.(pos) in
    match items.(pos) with
    | Schedule.Single n ->
        let node = ns.(n) in
        (match node.op with
        | L_input _ | L_const _ -> ()
        | L_mvm _ | L_binop _ | L_unop _ | L_immop _ | L_gather _ | L_output _
          ->
            Array.iter (fun p -> record tc p pos) node.preds);
        (* The production-time store reads the fresh value. *)
        if (not (is_hosted n)) && needs_slot n then record tc n pos
    | Schedule.Mvm_group ms ->
        Array.iter
          (fun m ->
            record tc ns.(m).Lgraph.preds.(0) pos;
            if needs_slot m then record tc m pos)
          ms
  done;
  Hashtbl.iter
    (fun (t, c, id) l ->
      Regalloc.set_next_uses regallocs.(t).(c) ~id ~positions:(List.rev !l))
    use_positions;
  (* ---- I/O bindings. ---- *)
  let input_bindings = ref [] in
  let output_bindings = ref [] in
  let const_bindings = ref [] in
  (* ---- Post-production glue: store, send/receive, externals. ---- *)
  let check_count n =
    if n > 255 then failwith "Codegen: more than 255 consumers of one value";
    n
  in
  let post_production pos id =
    let node = ns.(id) in
    let ht, hc = home id in
    if needs_slot id then begin
      (if not (is_hosted id) then begin
         let alloc = alloc_of (ht, hc) in
         let r = Regalloc.use alloc ~id ~pos ~exclude:[] in
         push core_bufs.(ht).(hc)
           (Instr.Store
              {
                src = r;
                addr = Instr.Imm_addr home_addr.(id);
                count = check_count (home_count id);
                vec_width = node.len;
              });
         Regalloc.consume_use alloc ~id ~pos
       end);
      List.iter
        (fun rt ->
          let fifo = fifo_of ~src:ht ~dst:rt in
          push tile_bufs.(ht)
            (Instr.Send
               {
                 mem_addr = home_addr.(id);
                 fifo_id = fifo;
                 target = rt;
                 vec_width = node.len;
               });
          push tile_bufs.(rt)
            (Instr.Receive
               {
                 mem_addr = Hashtbl.find remote_addr (id, rt);
                 fifo_id = fifo;
                 count = check_count (remote_count id rt);
                 vec_width = node.len;
               }))
        (remote_tiles id);
      (* Tell consumer cores where to find the value. *)
      List.iter
        (fun (t, c) ->
          if (t, c) <> (ht, hc) || is_hosted id then
            if t = ht then
              Regalloc.add_external (alloc_of (t, c)) ~id ~len:node.len
                ~addr:home_addr.(id) ~persistent:(is_hosted id)
            else
              Regalloc.add_external (alloc_of (t, c)) ~id ~len:node.len
                ~addr:(Hashtbl.find remote_addr (id, t))
                ~persistent:false)
        consumer_cores.(id)
    end
  in
  (* ---- Emission. ---- *)
  let xbar_in_base mvmu = Operand.xbar_in layout ~mvmu ~elem:0 in
  let xbar_out_base mvmu = Operand.xbar_out layout ~mvmu ~elem:0 in
  for pos = 0 to nitems - 1 do
    let t, c = item_core.(pos) in
    let cb = core_bufs.(t).(c) in
    let alloc = alloc_of (t, c) in
    match items.(pos) with
    | Schedule.Single n -> (
        let node = ns.(n) in
        emission_src := node.Lgraph.src;
        match node.op with
        | L_input { name; offset } ->
            input_bindings :=
              {
                Program.name;
                tile = t;
                mem_addr = home_addr.(n);
                length = node.len;
                offset;
              }
              :: !input_bindings;
            post_production pos n
        | L_const data ->
            let raw = Array.map (fun f -> Fixed.to_raw (Fixed.of_float f)) data in
            const_bindings :=
              ( {
                  Program.name = "const";
                  tile = t;
                  mem_addr = home_addr.(n);
                  length = node.len;
                  offset = 0;
                },
                raw )
              :: !const_bindings;
            post_production pos n
        | L_output { name; offset } ->
            let p = node.preds.(0) in
            let r = Regalloc.use alloc ~id:p ~pos ~exclude:[ p ] in
            let addr = alloc_smem t node.len in
            push cb
              (Instr.Store
                 {
                   src = r;
                   addr = Instr.Imm_addr addr;
                   count = 0;
                   vec_width = node.len;
                 });
            Regalloc.consume_use alloc ~id:p ~pos;
            output_bindings :=
              { Program.name; tile = t; mem_addr = addr; length = node.len; offset }
              :: !output_bindings
        | L_binop op ->
            let p1 = node.preds.(0) and p2 = node.preds.(1) in
            let excl = [ p1; p2; n ] in
            let r1 = Regalloc.use alloc ~id:p1 ~pos ~exclude:excl in
            let r2 = Regalloc.use alloc ~id:p2 ~pos ~exclude:excl in
            let d =
              match Regalloc.try_inplace alloc ~src:p1 ~dst:n ~len:node.len ~pos with
              | Some d -> d
              | None -> (
                  match
                    Regalloc.try_inplace alloc ~src:p2 ~dst:n ~len:node.len ~pos
                  with
                  | Some d -> d
                  | None ->
                      Regalloc.define alloc ~id:n ~len:node.len ~pos ~exclude:excl)
            in
            push cb
              (Instr.Alu
                 {
                   op = conv_binop op;
                   dest = d;
                   src1 = r1;
                   src2 = r2;
                   vec_width = node.len;
                 });
            Regalloc.consume_use alloc ~id:p1 ~pos;
            Regalloc.consume_use alloc ~id:p2 ~pos;
            post_production pos n
        | L_unop op ->
            let p = node.preds.(0) in
            let excl = [ p; n ] in
            let r = Regalloc.use alloc ~id:p ~pos ~exclude:excl in
            let d =
              match Regalloc.try_inplace alloc ~src:p ~dst:n ~len:node.len ~pos with
              | Some d -> d
              | None -> Regalloc.define alloc ~id:n ~len:node.len ~pos ~exclude:excl
            in
            push cb
              (Instr.Alu
                 {
                   op = conv_unop op;
                   dest = d;
                   src1 = r;
                   src2 = r;
                   vec_width = node.len;
                 });
            Regalloc.consume_use alloc ~id:p ~pos;
            post_production pos n
        | L_immop op ->
            let p = node.preds.(0) in
            let excl = [ p; n ] in
            let r = Regalloc.use alloc ~id:p ~pos ~exclude:excl in
            let d =
              match Regalloc.try_inplace alloc ~src:p ~dst:n ~len:node.len ~pos with
              | Some d -> d
              | None -> Regalloc.define alloc ~id:n ~len:node.len ~pos ~exclude:excl
            in
            let aop, imm =
              match op with
              | G.Add_imm f -> (Instr.Add, Fixed.to_raw (Fixed.of_float f))
              | G.Mul_imm f -> (Instr.Mul, Fixed.to_raw (Fixed.of_float f))
            in
            push cb
              (Instr.Alui
                 { op = aop; dest = d; src1 = r; imm; vec_width = node.len });
            Regalloc.consume_use alloc ~id:p ~pos;
            post_production pos n
        | L_gather pieces ->
            (* Sources are brought in one at a time so a wide gather never
               needs more than the destination plus one source resident. *)
            let preds = node.preds in
            let d = Regalloc.define alloc ~id:n ~len:node.len ~pos ~exclude:[ n ] in
            Array.iteri
              (fun src_idx p ->
                let r = Regalloc.use alloc ~id:p ~pos ~exclude:[ n; p ] in
                Array.iter
                  (fun { Lgraph.src; src_off; piece_len; dst_off } ->
                    if src = src_idx then
                      push cb
                        (Instr.Copy
                           {
                             dest = d + dst_off;
                             src = r + src_off;
                             vec_width = piece_len;
                           }))
                  pieces;
                Regalloc.consume_use alloc ~id:p ~pos)
              preds;
            post_production pos n
        | L_mvm _ -> assert false (* MVMs always arrive as groups *))
    | Schedule.Mvm_group ms ->
        let mask = ref 0 in
        Array.iter
          (fun m ->
            let node = ns.(m) in
            emission_src := node.Lgraph.src;
            let slot =
              match node.Lgraph.op with
              | L_mvm { slot } -> slot
              | _ -> assert false
            in
            let mvmu = Partition.mvmu_of_slot part slot in
            mask := !mask lor (1 lsl mvmu);
            let p = node.preds.(0) in
            let in_len = ns.(p).Lgraph.len in
            let r = Regalloc.use alloc ~id:p ~pos ~exclude:[ p ] in
            push cb
              (Instr.Copy { dest = xbar_in_base mvmu; src = r; vec_width = in_len });
            Regalloc.consume_use alloc ~id:p ~pos)
          ms;
        emission_src := ns.(ms.(0)).Lgraph.src;
        push cb (Instr.Mvm { mask = !mask; filter = 0; stride = 0 });
        Array.iter
          (fun m ->
            let node = ns.(m) in
            emission_src := node.Lgraph.src;
            let slot =
              match node.Lgraph.op with
              | L_mvm { slot } -> slot
              | _ -> assert false
            in
            let mvmu = Partition.mvmu_of_slot part slot in
            let d = Regalloc.define alloc ~id:m ~len:node.len ~pos ~exclude:[] in
            push cb
              (Instr.Copy
                 { dest = d; src = xbar_out_base mvmu; vec_width = node.len });
            post_production pos m)
          ms
  done;
  emission_src := -1;
  (* ---- Optional batch loop (CNN control flow, Section 2.3.1). ---- *)
  let finalize_core_stream b =
    let body = to_array b in
    let body_srcs = src_array b in
    if (not wrap_batch_loop) || Array.length body = 0 then (body, body_srcs)
    else begin
      let prologue =
        [|
          Instr.Set_sreg { dest = 0; imm = 0 };
          Instr.Set_sreg { dest = 1; imm = 1 };
          Instr.Set_sreg { dest = 2; imm = 1 };
        |]
      in
      let shift = Array.length prologue in
      let shifted =
        Array.map
          (fun i ->
            match i with
            | Instr.Jmp { pc } -> Instr.Jmp { pc = pc + shift }
            | Instr.Brn b -> Instr.Brn { b with pc = b.pc + shift }
            | _ -> i)
          body
      in
      let epilogue =
        [|
          Instr.Alu_int { op = Instr.Iadd; dest = 0; src1 = 0; src2 = 2 };
          Instr.Brn { op = Instr.Blt; src1 = 0; src2 = 1; pc = shift };
        |]
      in
      ( Array.concat [ prologue; shifted; epilogue ],
        Array.concat
          [
            Array.make shift (-1);
            body_srcs;
            Array.make (Array.length epilogue) (-1);
          ] )
    end
  in
  (* ---- Assemble the program. ---- *)
  let slot_images = Array.init ntiles (fun _ -> ref []) in
  Array.iter
    (fun (s : Lgraph.slot) ->
      let t, c, m = part.Partition.slot_mvmu.(s.slot_id) in
      slot_images.(t) :=
        { Program.core_index = c; mvmu_index = m; weights = s.block }
        :: !(slot_images.(t)))
    (Lgraph.slots lg);
  let finalized =
    Array.init ntiles (fun t -> Array.map finalize_core_stream core_bufs.(t))
  in
  let tiles =
    Array.init ntiles (fun t ->
        {
          Program.tile_index = t;
          core_code = Array.map fst finalized.(t);
          tile_code = to_array tile_bufs.(t);
          mvmu_images = List.rev !(slot_images.(t));
        })
  in
  let provenance =
    {
      core_src = Array.init ntiles (fun t -> Array.map snd finalized.(t));
      tile_src = Array.init ntiles (fun t -> src_array tile_bufs.(t));
    }
  in
  let program =
    {
      Program.config;
      tiles;
      inputs = List.rev !input_bindings;
      outputs = List.rev !output_bindings;
      constants = List.rev !const_bindings;
    }
  in
  (* ---- Statistics. ---- *)
  let num_loads = ref 0
  and num_stores = ref 0
  and num_sends = ref 0
  and num_receives = ref 0
  and num_mvms = ref 0
  and total = ref 0 in
  Program.iter_instrs program (fun i ->
      incr total;
      match i with
      | Instr.Load _ -> incr num_loads
      | Instr.Store _ -> incr num_stores
      | Instr.Send _ -> incr num_sends
      | Instr.Receive _ -> incr num_receives
      | Instr.Mvm _ -> incr num_mvms
      | _ -> ());
  let spill_loads = ref 0 and uses = ref 0 in
  Array.iter
    (Array.iter (fun ra ->
         spill_loads := !spill_loads + Regalloc.spill_loads ra;
         uses := !uses + Regalloc.total_uses ra))
    regallocs;
  let stats =
    {
      num_loads = !num_loads;
      num_stores = !num_stores;
      num_sends = !num_sends;
      num_receives = !num_receives;
      spilled_fraction =
        (if !uses = 0 then 0.0
         else Float.of_int !spill_loads /. Float.of_int !uses);
      smem_high_water = Array.fold_left max 0 smem_ptr;
      mvm_instructions = !num_mvms;
      total_instructions = !total;
    }
  in
  (program, stats, provenance)
