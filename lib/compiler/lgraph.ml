type lop =
  | L_input of { name : string; offset : int }
  | L_const of float array
  | L_mvm of { slot : int }
  | L_binop of Puma_graph.Graph.binop
  | L_unop of Puma_graph.Graph.unop
  | L_immop of Puma_graph.Graph.immop
  | L_gather of piece array
  | L_output of { name : string; offset : int }

and piece = { src : int; src_off : int; piece_len : int; dst_off : int }

type lnode = { id : int; op : lop; preds : int array; len : int; src : int }

type slot = {
  slot_id : int;
  matrix : int;
  row_block : int;
  col_block : int;
  block : Puma_util.Tensor.mat;
}

type t = {
  dim : int;
  mutable node_list : lnode list;  (* reverse *)
  mutable node_count : int;
  mutable slot_list : slot list;  (* reverse *)
  mutable slot_count : int;
  slot_index : (int * int * int, int) Hashtbl.t;
  mutable nodes_cache : lnode array option;
  mutable slots_cache : slot array option;
}

let create ~dim =
  {
    dim;
    node_list = [];
    node_count = 0;
    slot_list = [];
    slot_count = 0;
    slot_index = Hashtbl.create 64;
    nodes_cache = None;
    slots_cache = None;
  }

let dim t = t.dim

let add_slot t ~matrix ~row_block ~col_block ~block =
  let key = (matrix, row_block, col_block) in
  match Hashtbl.find_opt t.slot_index key with
  | Some id -> id
  | None ->
      let id = t.slot_count in
      t.slot_list <- { slot_id = id; matrix; row_block; col_block; block } :: t.slot_list;
      t.slot_count <- id + 1;
      t.slots_cache <- None;
      Hashtbl.add t.slot_index key id;
      id

let add_node ?(src = -1) t ~op ~preds ~len =
  Array.iter
    (fun p ->
      if p < 0 || p >= t.node_count then
        invalid_arg (Printf.sprintf "Lgraph.add_node: pred %d undefined" p))
    preds;
  if len <= 0 || len > t.dim then
    invalid_arg (Printf.sprintf "Lgraph.add_node: segment length %d not in 1..%d" len t.dim);
  let id = t.node_count in
  t.node_list <- { id; op; preds; len; src } :: t.node_list;
  t.node_count <- id + 1;
  t.nodes_cache <- None;
  id

let nodes t =
  match t.nodes_cache with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev t.node_list) in
      t.nodes_cache <- Some a;
      a

let slots t =
  match t.slots_cache with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev t.slot_list) in
      t.slots_cache <- Some a;
      a

let node t id = (nodes t).(id)
let num_nodes t = t.node_count
let slot t id = (slots t).(id)
let num_slots t = t.slot_count

let consumers t =
  let cons = Array.make t.node_count [] in
  Array.iter
    (fun (n : lnode) ->
      Array.iter (fun p -> cons.(p) <- n.id :: cons.(p)) n.preds)
    (nodes t);
  Array.map (fun l -> Array.of_list (List.rev l)) cons

let levels t =
  let ns = nodes t in
  let lev = Array.make t.node_count 0 in
  Array.iter
    (fun (n : lnode) ->
      let m = Array.fold_left (fun acc p -> max acc (lev.(p) + 1)) 0 n.preds in
      lev.(n.id) <- m)
    ns;
  lev

let reverse_postorder t =
  let ns = nodes t in
  let visited = Array.make t.node_count false in
  let order = ref [] in
  let rec visit id =
    if not visited.(id) then begin
      visited.(id) <- true;
      Array.iter visit ns.(id).preds;
      order := id :: !order
    end
  in
  (* Depth-first from each sink in reverse creation order: values feeding a
     sink are fully consumed before unrelated producers start. *)
  let cons = consumers t in
  for id = t.node_count - 1 downto 0 do
    if Array.length cons.(id) = 0 then visit id
  done;
  for id = 0 to t.node_count - 1 do
    visit id
  done;
  Array.of_list (List.rev !order)

(* ---- Reference-dataflow extraction for translation validation ----

   Deliberately independent of Codegen: the binop/unop/immop encodings and
   the fixed-point immediate quantization are re-derived here, so a wrong
   mapping in the code generator refutes instead of reproducing on both
   sides of the Equiv check. *)

module E = Puma_analysis.Equiv

let ref_binop : Puma_graph.Graph.binop -> Puma_isa.Instr.alu_op = function
  | Puma_graph.Graph.Add -> Puma_isa.Instr.Add
  | Sub -> Sub
  | Mul -> Mul
  | Div -> Div
  | Min -> Min
  | Max -> Max

let ref_unop : Puma_graph.Graph.unop -> Puma_isa.Instr.alu_op = function
  | Puma_graph.Graph.Relu -> Puma_isa.Instr.Relu
  | Sigmoid -> Sigmoid
  | Tanh -> Tanh
  | Exp -> Exp
  | Log -> Log

let quantize f = Puma_util.Fixed.to_raw (Puma_util.Fixed.of_float f)

let to_reference ~matrix_name t =
  let slots = slots t in
  Array.map
    (fun (n : lnode) ->
      let op =
        match n.op with
        | L_input { name; offset } -> E.R_input { name; offset }
        | L_const data -> E.R_const (Array.map quantize data)
        | L_mvm { slot } ->
            let s = slots.(slot) in
            E.R_mvm
              {
                weights = s.block;
                label =
                  Printf.sprintf "%s[r%d,c%d]" (matrix_name s.matrix)
                    s.row_block s.col_block;
              }
        | L_binop op -> E.R_alu (ref_binop op)
        | L_unop op -> E.R_alu (ref_unop op)
        | L_immop (Puma_graph.Graph.Add_imm f) ->
            E.R_alui { op = Puma_isa.Instr.Add; imm = quantize f }
        | L_immop (Puma_graph.Graph.Mul_imm f) ->
            E.R_alui { op = Puma_isa.Instr.Mul; imm = quantize f }
        | L_gather pieces ->
            E.R_gather
              (Array.map
                 (fun { src; src_off; piece_len; dst_off } ->
                   { E.src; src_off; piece_len; dst_off })
                 pieces)
        | L_output { name; offset } -> E.R_output { name; offset }
      in
      { E.op; preds = n.preds; len = n.len })
    (nodes t)
