(** Code generation: lowered graph + placement + schedule -> PUMA program.

    Walks the global schedule once, emitting each core's instruction
    subsequence with on-the-fly register allocation ({!Regalloc}), and
    inserting the data-movement glue of Section 5.2:

    - values consumed by another core are stored to the producer tile's
      shared memory with a consumer count covering every local consumer
      core and every remote tile (the Figure 6 synchronization protocol);
    - values consumed in another tile additionally get a [send] in the
      producer tile's control stream and a [receive] in each consumer
      tile's stream, with FIFO ids virtualized per sender
      (Section 4.2) — both placed at the value's position in the global
      linearization, preserving the deadlock-freedom argument of
      Section 5.3.3;
    - network inputs and constant vectors live in sticky (uncounted)
      shared-memory slots written by the host, recorded as I/O bindings.

    An optional batch loop wraps each core stream in SFU-driven control
    flow (used for CNN workloads, Section 2.3.1). *)

type stats = {
  num_loads : int;
  num_stores : int;
  num_sends : int;
  num_receives : int;
  spilled_fraction : float;  (** Fraction of uses served from spills. *)
  smem_high_water : int;  (** Max words allocated in any tile memory. *)
  mvm_instructions : int;
  total_instructions : int;
}

type provenance = {
  core_src : int array array array;
      (** [core_src.(tile).(core).(pc)] = id of the source-graph node the
          instruction was emitted for, or -1 for runtime glue (batch-loop
          control flow, prologue). *)
  tile_src : int array array;  (** Same for tile control streams. *)
}

val generate :
  Puma_hwmodel.Config.t ->
  wrap_batch_loop:bool ->
  Puma_graph.Graph.t ->
  Lgraph.t ->
  Partition.t ->
  Schedule.t ->
  Puma_isa.Program.t * stats * provenance
(** Raises [Failure] when a tile would need more receive FIFOs than the
    hardware provides or a tile memory overflows. *)
