(** Hierarchical graph partitioning (Section 5.2).

    Assigns every MVMU slot to a physical (tile, core, MVMU) and every
    non-MVM lowered node to a (tile, core). The locality strategy follows
    the paper's priority: slots feeding the same outputs (same matrix and
    row block) are packed together first, then slots reading the same
    inputs (same column block), then producer-consumer neighbours —
    realized by packing slots in (matrix, row-block, column-block) order.
    The random strategy (the Table 8 baseline) shuffles slots before
    packing. Non-MVM nodes are placed by demand: each node goes to the
    core of its first consumer (computed in reverse topological order), so
    values are produced where they are used.

    With a {!cluster}, placement becomes node-aware: slots are first
    assigned to cluster nodes (layer-pipelined contiguous runs or
    tensor-sharded by row block), then packed densely within each node's
    contiguous block of [tiles_per_node] global tiles. Cut edges whose
    endpoints land on different nodes become inter-node transfers on the
    {!Puma_noc.Fabric}. *)

type strategy = Locality | Random of int  (** Random carries a seed. *)

type scheme =
  | Pipelined
      (** Contiguous layer runs per node (broken at matrix boundaries when
          balance allows, at node capacity always). *)
  | Sharded
      (** Row blocks scatter round-robin, so every node computes a slice
          of every layer and cut edges carry partial results. *)

val scheme_name : scheme -> string
val scheme_of_string : string -> scheme option

type cluster = { nodes : int; scheme : scheme }

type place = {
  tile : int;
  core : int;
  node : int;  (** Owning cluster node ([tile / tiles_per_node]). *)
}

type t = {
  config : Puma_hwmodel.Config.t;
  slot_mvmu : (int * int * int) array;
      (** Per slot: (tile, core, mvmu-within-core). Tiles are global. *)
  node_place : place array;  (** Per lowered node. *)
  tiles_used : int;
  cores_used : int;
  nodes_used : int;
      (** Cluster nodes the placement spans (1 without a cluster on
          models that fit one node). *)
  tiles_per_node : int;
      (** Global tile stride between consecutive nodes' blocks. *)
}

val partition :
  ?cluster:cluster -> Puma_hwmodel.Config.t -> strategy -> Lgraph.t -> t
(** Without [cluster], models larger than one node spill onto further
    nodes (tiles beyond [tiles_per_node] belong to the next node); raises
    [Failure] beyond a 64-node sanity cap. With [cluster], raises
    [Failure] when the model does not fit the requested node count (the
    message names the minimum). *)

val slot_place : t -> int -> place
val mvmu_of_slot : t -> int -> int
(** MVMU index within its core. *)

type edge_stats = {
  intra_core : int;  (** Producer-consumer edges within one core. *)
  cross_core : int;  (** Edges crossing cores within a tile. *)
  cross_tile : int;  (** Edges crossing tiles (includes cross-node). *)
  cross_node : int;  (** Subset of [cross_tile] crossing cluster nodes. *)
}

val edge_stats : t -> Lgraph.t -> edge_stats
(** Communication footprint of a placement (the Table 8 graph-partitioning
    metric: fewer loads/stores/sends/receives). *)
