(** Pre-decoded fast execution path for a core's instruction stream.

    {!decode} lowers every instruction into a closure with operand views,
    latency and energy-event sequence resolved once, so per-cycle cost
    drops to an array index plus an indirect call. Bit-identity with
    {!Puma_arch.Core.step} is the contract (same mutation order, same
    per-category [Energy.add] sequence, same RNG consumption); anything
    that cannot be resolved statically falls back to [Core.step]. *)

type code = (unit -> int) array
(** One closure per instruction, indexed by pc. Each call executes the
    instruction and returns a step code. *)

val r_halted : int
(** Step code: the core is (now) halted. *)

val r_blocked_read : int
(** Step code: blocked reading shared memory (operand not yet valid). *)

val r_blocked_write : int
(** Step code: blocked writing shared memory (pending consumers). *)

val decode : Puma_arch.Core.t -> Shared_mem.t -> code
(** Pre-decode the core's full instruction stream against its register
    spaces and the tile's shared memory. Pure over the immutable code
    array: decode once, reuse for every run. *)

val step : Puma_arch.Core.t -> code -> int
(** Execute one instruction at the core's current pc. Returns the retired
    occupancy in cycles ([>= 0]) or one of the negative step codes. *)
