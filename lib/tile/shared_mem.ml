type t = {
  data : int array;
  valid : bool array;
  count : int array;
  (* Bumped by every successful (state-mutating) read or write. A blocked
     load/store/send/receive retried against an unchanged generation is
     guaranteed to block again, so the fast scheduler parks blocked
     entities on this counter instead of re-polling them every pass. *)
  mutable gen : int;
}

let create ~words =
  if words <= 0 then invalid_arg "Shared_mem.create: words must be positive";
  {
    data = Array.make words 0;
    valid = Array.make words false;
    count = Array.make words 0;
    gen = 0;
  }

let generation t = t.gen

let words t = Array.length t.data

let in_range t addr width =
  addr >= 0 && width >= 0 && addr + width <= Array.length t.data

let read t ~addr ~width =
  if not (in_range t addr width) then
    invalid_arg (Printf.sprintf "Shared_mem.read: [%d, %d) out of range" addr (addr + width));
  let ok = ref true in
  for k = addr to addr + width - 1 do
    if not t.valid.(k) then ok := false
  done;
  if not !ok then None
  else begin
    let values = Array.sub t.data addr width in
    for k = addr to addr + width - 1 do
      if t.count.(k) > 0 then begin
        t.count.(k) <- t.count.(k) - 1;
        if t.count.(k) = 0 then t.valid.(k) <- false
      end
    done;
    t.gen <- t.gen + 1;
    Some values
  end

(* Allocation-free variant of [read] for the pre-decoded fast path: on
   success copies the words into [dst] at [dst_pos] and performs exactly
   the same consumer-count decrements; on failure (some word invalid)
   touches nothing. *)
let read_into t ~addr ~width ~dst ~dst_pos =
  if not (in_range t addr width) then
    invalid_arg (Printf.sprintf "Shared_mem.read: [%d, %d) out of range" addr (addr + width));
  let ok = ref true in
  for k = addr to addr + width - 1 do
    if not t.valid.(k) then ok := false
  done;
  if not !ok then false
  else begin
    Array.blit t.data addr dst dst_pos width;
    for k = addr to addr + width - 1 do
      if t.count.(k) > 0 then begin
        t.count.(k) <- t.count.(k) - 1;
        if t.count.(k) = 0 then t.valid.(k) <- false
      end
    done;
    t.gen <- t.gen + 1;
    true
  end

let peek t ~addr ~width =
  if not (in_range t addr width) then
    invalid_arg "Shared_mem.peek: out of range";
  let ok = ref true in
  for k = addr to addr + width - 1 do
    if not t.valid.(k) then ok := false
  done;
  if !ok then Some (Array.sub t.data addr width) else None

let write t ~addr ~values ~count =
  let width = Array.length values in
  if not (in_range t addr width) then
    invalid_arg (Printf.sprintf "Shared_mem.write: [%d, %d) out of range" addr (addr + width));
  if count < 0 then invalid_arg "Shared_mem.write: negative count";
  let blocked = ref false in
  if count > 0 then
    for k = addr to addr + width - 1 do
      (* A counted word still awaiting consumers must not be overwritten. *)
      if t.valid.(k) && t.count.(k) > 0 then blocked := true
    done;
  if !blocked then false
  else begin
    Array.iteri
      (fun i v ->
        let k = addr + i in
        t.data.(k) <- v;
        t.valid.(k) <- true;
        t.count.(k) <- count)
      values;
    t.gen <- t.gen + 1;
    true
  end

(* Allocation-free variant of [write]: takes the values from [src] at
   [src_pos] with the same blocking rule (a counted word still awaiting
   consumers must not be overwritten) and the same per-word data/valid/
   count update order. *)
let write_from t ~addr ~src ~src_pos ~width ~count =
  if not (in_range t addr width) then
    invalid_arg (Printf.sprintf "Shared_mem.write: [%d, %d) out of range" addr (addr + width));
  if count < 0 then invalid_arg "Shared_mem.write: negative count";
  let blocked = ref false in
  if count > 0 then
    for k = addr to addr + width - 1 do
      if t.valid.(k) && t.count.(k) > 0 then blocked := true
    done;
  if !blocked then false
  else begin
    for i = 0 to width - 1 do
      let k = addr + i in
      t.data.(k) <- src.(src_pos + i);
      t.valid.(k) <- true;
      t.count.(k) <- count
    done;
    t.gen <- t.gen + 1;
    true
  end

let host_write t ~addr ~values =
  ignore (write t ~addr ~values ~count:0)

let valid t ~addr = t.valid.(addr)
let pending_count t ~addr = t.count.(addr)
