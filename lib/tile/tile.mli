(** A PUMA tile: cores, shared memory, receive buffer and the tile control
    unit executing the send/receive stream (Figure 5).

    The tile exposes step functions for its control unit and each core;
    the node simulator interleaves them. Outgoing messages are handed to
    the node through a queue drained by the network model; incoming
    messages are delivered into the receive buffer with {!deliver}. *)

type outgoing = {
  target_tile : int;
  fifo_id : int;
  payload : int array;
  issue_cycle : int;  (** Core-clock cycle at which the send retired. *)
}

type step_result =
  | Retired of { cycles : int; instr : Puma_isa.Instr.t }
  | Blocked of Puma_arch.Core.stall
      (** Waiting; the payload says on what (send → {!Puma_arch.Core.Stall_smem_read},
          receive → [Stall_recv_fifo] while the packet is missing, then
          [Stall_smem_write] until the destination words drain). *)
  | Halted

type t

val create :
  Puma_hwmodel.Config.t ->
  index:int ->
  energy:Puma_hwmodel.Energy.t ->
  core_code:Puma_isa.Instr.t array array ->
  tile_code:Puma_isa.Instr.t array ->
  t

val index : t -> int
val num_cores : t -> int
val core : t -> int -> Puma_arch.Core.t
val shared_mem : t -> Shared_mem.t

val smem_generation : t -> int
(** Shortcut for [Shared_mem.generation (shared_mem t)]; the fast
    scheduler parks blocked cores and a blocked TCU on this counter. *)

val recv_buffer : t -> Recv_buffer.t

val step_core : t -> int -> Puma_arch.Core.step_result
(** Advance core [i] by one instruction (wired to this tile's shared
    memory). *)

val fast_code : t -> Fastexec.code array
(** The pre-decoded instruction streams, one per core, built lazily on
    first use and cached (decoding is pure over the immutable code
    arrays). *)

val step_core_fast : t -> Fastexec.code array -> int -> int
(** [step_core_fast t (fast_code t) i] advances core [i] through its
    pre-decoded stream; returns a {!Fastexec} return code ([>= 0] retired
    cycles, negative blocked/halted). Bit-identical to {!step_core}. *)

val step_tcu : t -> now:int -> step_result
(** Advance the tile control unit by one send/receive instruction.
    A [send] blocks until its shared-memory operand is valid; a [receive]
    blocks until a packet is available in its FIFO and the destination
    words are writable. *)

val pop_outgoing : t -> outgoing option
(** Drain the next message issued by a retired [send]. *)

val deliver : t -> fifo:int -> src_tile:int -> payload:int array -> bool
(** Network delivery into the receive buffer; [false] if the FIFO is full. *)

val all_halted : t -> bool
(** Control unit and every core have halted. *)

val any_progress_possible : t -> bool
(** At least one core or the TCU is not halted. *)

val host_write : t -> addr:int -> values:int array -> unit
val host_read : t -> addr:int -> width:int -> int array option

val tcu_pc : t -> int
(** Current tile-control-unit program counter (diagnostics). *)

val reset : t -> unit
(** Rewind the control unit and every core to the start of their streams
    (memory and register contents persist), enabling a new inference. *)
