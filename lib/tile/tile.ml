module Instr = Puma_isa.Instr
module Core = Puma_arch.Core
module Energy = Puma_hwmodel.Energy
module Latency = Puma_hwmodel.Latency

type outgoing = {
  target_tile : int;
  fifo_id : int;
  payload : int array;
  issue_cycle : int;
}

type step_result =
  | Retired of { cycles : int; instr : Instr.t }
  | Blocked of Core.stall
  | Halted

(* Preallocated: blocked steps are retried every scheduler iteration and
   must not allocate. *)
let blocked_smem_read = Blocked Core.Stall_smem_read
let blocked_smem_write = Blocked Core.Stall_smem_write
let blocked_recv_fifo = Blocked Core.Stall_recv_fifo

type t = {
  config : Puma_hwmodel.Config.t;
  index : int;
  energy : Energy.t;
  cores : Core.t array;
  smem : Shared_mem.t;
  recv : Recv_buffer.t;
  tile_code : Instr.t array;
  outgoing : outgoing Queue.t;
  mutable tcu_pc : int;
  mutable tcu_halted : bool;
  (* Lazily built pre-decoded streams (one per core) for the fast path;
     decoding is pure over the immutable code arrays, so the cache never
     needs invalidation. *)
  mutable fast_code : Fastexec.code array option;
}

let create (config : Puma_hwmodel.Config.t) ~index ~energy ~core_code ~tile_code =
  if Array.length core_code > config.cores_per_tile then
    invalid_arg "Tile.create: more core streams than cores per tile";
  let cores =
    Array.init config.cores_per_tile (fun i ->
        let code =
          if i < Array.length core_code then core_code.(i) else [||]
        in
        Core.create config ~seed:((index * 31) + i + 1) ~energy code)
  in
  {
    config;
    index;
    energy;
    cores;
    smem = Shared_mem.create ~words:(config.smem_bytes / 2);
    recv = Recv_buffer.create ~num_fifos:config.num_fifos ~depth:config.fifo_depth;
    tile_code;
    outgoing = Queue.create ();
    tcu_pc = 0;
    tcu_halted = false;
    fast_code = None;
  }

let index t = t.index
let num_cores t = Array.length t.cores
let core t i = t.cores.(i)
let shared_mem t = t.smem
let smem_generation t = Shared_mem.generation t.smem
let recv_buffer t = t.recv

let mem_iface t : Core.mem_iface =
  {
    load = (fun ~addr ~width -> Shared_mem.read t.smem ~addr ~width);
    store =
      (fun ~addr ~values ~count -> Shared_mem.write t.smem ~addr ~values ~count);
  }

let step_core t i = Core.step t.cores.(i) ~mem:(mem_iface t)

let fast_code t =
  match t.fast_code with
  | Some fc -> fc
  | None ->
      let fc = Array.map (fun core -> Fastexec.decode core t.smem) t.cores in
      t.fast_code <- Some fc;
      fc

(* Fast-path core step: returns a [Fastexec] return code (>= 0 retired
   cycles, negative blocked/halted). *)
let step_core_fast t fc i = Fastexec.step t.cores.(i) fc.(i)

let step_tcu t ~now =
  if t.tcu_halted then Halted
  else if t.tcu_pc < 0 || t.tcu_pc >= Array.length t.tile_code then begin
    t.tcu_halted <- true;
    Halted
  end
  else
    match t.tile_code.(t.tcu_pc) with
    | Halt ->
        t.tcu_halted <- true;
        Halted
    | Send { mem_addr; fifo_id; target; vec_width } as instr -> (
        match Shared_mem.read t.smem ~addr:mem_addr ~width:vec_width with
        | None -> blocked_smem_read
        | Some payload ->
            let cycles = Latency.send_occupancy t.config ~vec_width in
            Queue.add
              {
                target_tile = target;
                fifo_id;
                payload;
                issue_cycle = now + cycles;
              }
              t.outgoing;
            Energy.add t.energy Smem vec_width;
            Energy.add t.energy Bus vec_width;
            Energy.add t.energy Attr 1;
            t.tcu_pc <- t.tcu_pc + 1;
            Retired { cycles; instr })
    | Receive { mem_addr; fifo_id; count; vec_width } as instr -> (
        match Recv_buffer.peek t.recv ~fifo:fifo_id with
        | None -> blocked_recv_fifo
        | Some pkt ->
            if Array.length pkt.payload <> vec_width then
              invalid_arg
                (Printf.sprintf
                   "Tile.step_tcu: receive width %d but packet has %d words"
                   vec_width (Array.length pkt.payload));
            if Shared_mem.write t.smem ~addr:mem_addr ~values:pkt.payload ~count
            then begin
              ignore (Recv_buffer.pop t.recv ~fifo:fifo_id);
              let cycles = Latency.receive_occupancy t.config ~vec_width in
              Energy.add t.energy Fifo vec_width;
              Energy.add t.energy Smem vec_width;
              Energy.add t.energy Bus vec_width;
              Energy.add t.energy Attr 1;
              t.tcu_pc <- t.tcu_pc + 1;
              Retired { cycles; instr }
            end
            else blocked_smem_write)
    | Mvm _ | Alu _ | Alui _ | Alu_int _ | Set _ | Set_sreg _ | Copy _
    | Load _ | Store _ | Jmp _ | Brn _ ->
        invalid_arg "Tile.step_tcu: core instruction in tile stream"

let pop_outgoing t = Queue.take_opt t.outgoing

let deliver t ~fifo ~src_tile ~payload =
  let accepted = Recv_buffer.push t.recv ~fifo { src_tile; payload } in
  if accepted then Energy.add t.energy Fifo (Array.length payload);
  accepted

let all_halted t =
  t.tcu_halted && Array.for_all Core.halted t.cores

let any_progress_possible t =
  (not t.tcu_halted) || Array.exists (fun c -> not (Core.halted c)) t.cores

let host_write t ~addr ~values = Shared_mem.host_write t.smem ~addr ~values
let host_read t ~addr ~width = Shared_mem.peek t.smem ~addr ~width

let tcu_pc t = t.tcu_pc

let reset t =
  t.tcu_pc <- 0;
  t.tcu_halted <- false;
  Array.iter Core.reset t.cores
