(* Pre-decoded fast execution path for a core's instruction stream.

   [decode] lowers every instruction into a closure with its operand
   views, latency, and energy-event sequence resolved once, so the
   per-cycle cost drops to an array index plus an indirect call —
   no pattern match on boxed ISA values, no register-space dispatch, no
   per-retire allocation. [step] then drives one instruction.

   Bit-identity with [Core.step] is the contract, checked by
   test/test_fastpath.ml:
   - register and memory mutations happen in the same element order
     (ascending [k] loops, so overlapping vector operands behave
     identically);
   - the per-category [Energy.add] sequence is reproduced call for call
     (float accumulation order matters for bit-identical ledgers);
   - RNG-consuming ops ([Rand]) go through the same [Vfu] entry points in
     the same element order;
   - anything that cannot be resolved statically — operands crossing a
     register-space boundary, out-of-range bases whose exceptions must
     stay lazy, tile instructions in a core stream — falls back to
     [Core.step] itself. *)

module Instr = Puma_isa.Instr
module Operand = Puma_isa.Operand
module Core = Puma_arch.Core
module Regfile = Puma_arch.Regfile
module Vfu = Puma_arch.Vfu
module Sfu = Puma_arch.Sfu
module Energy = Puma_hwmodel.Energy
module Latency = Puma_hwmodel.Latency
module Fixed = Puma_util.Fixed
module Mvmu = Puma_xbar.Mvmu

(* Step return codes: >= 0 is the occupancy in cycles of a retired
   instruction; negative codes mirror the [Core.step_result] variants the
   scheduler distinguishes. *)
let r_halted = -1
let r_blocked_read = -2
let r_blocked_write = -3

type code = (unit -> int) array

(* A vector operand resolved to a flat backing array: (buffer, offset,
   energy category of the containing register space). *)
type view = int array * int * Energy.category

let decode (core : Core.t) (smem : Shared_mem.t) : code =
  let cfg = Core.config core in
  let layout = Core.layout core in
  let gpr = Regfile.gpr (Core.regfile core) in
  let energy = Core.energy core in
  let sregs = Core.sregs core in
  let mvmus = Core.mvmus core in
  let rng = Core.rng core in
  let dim = layout.Operand.mvmu_dim in
  (* Reference fallback: one shared mem_iface + closure, built once. *)
  let mem : Core.mem_iface =
    {
      load = (fun ~addr ~width -> Shared_mem.read smem ~addr ~width);
      store =
        (fun ~addr ~values ~count -> Shared_mem.write smem ~addr ~values ~count);
    }
  in
  let generic () =
    match Core.step core ~mem with
    | Core.Retired { cycles; _ } -> cycles
    | Core.Blocked Core.Stall_smem_read -> r_blocked_read
    | Core.Blocked _ -> r_blocked_write
    | Core.Halted -> r_halted
  in
  (* Retirement bookkeeping, mirroring [Core.retire]/[Core.retire_jump]. *)
  let commit cycles = Core.retire_fast core ~cycles in
  let commit_jump ~target cycles = Core.retire_jump_fast core ~target ~cycles in
  (* Resolve [base, base+width) to a single backing array, or [None] when
     the range is empty, out of bounds (the reference path's lazy
     exception must be preserved) or crosses an MVMU/space boundary
     (element-wise dispatch required). *)
  let view base width : view option =
    if base < 0 || width < 1 || base + width > layout.Operand.total then None
    else if base + width <= layout.Operand.xbar_out_base then
      let off = base - layout.Operand.xbar_in_base in
      let m = off / dim and e = off mod dim in
      if e + width <= dim then Some (Mvmu.xbar_in mvmus.(m), e, Energy.Xbar_reg)
      else None
    else if
      base >= layout.Operand.xbar_out_base
      && base + width <= layout.Operand.gpr_base
    then
      let off = base - layout.Operand.xbar_out_base in
      let m = off / dim and e = off mod dim in
      if e + width <= dim then Some (Mvmu.xbar_out mvmus.(m), e, Energy.Xbar_reg)
      else None
    else if base >= layout.Operand.gpr_base then
      Some (gpr, base - layout.Operand.gpr_base, Energy.Rf)
    else None
  in
  (* Monomorphic element-wise loops for the hot ALU ops, replicating the
     [Vfu.apply_*] Fixed chains exactly; everything else dispatches to the
     shared [Vfu] entry points per element. *)
  let binary_loop op (sa, oa, _) (sb, ob, _) (dd, od, _) w =
    match (op : Instr.alu_op) with
    | Add ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Fixed.add (Fixed.of_raw sa.(oa + k)) (Fixed.of_raw sb.(ob + k)))
          done
    | Sub ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Fixed.sub (Fixed.of_raw sa.(oa + k)) (Fixed.of_raw sb.(ob + k)))
          done
    | Mul ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Fixed.mul (Fixed.of_raw sa.(oa + k)) (Fixed.of_raw sb.(ob + k)))
          done
    | Min ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Fixed.min (Fixed.of_raw sa.(oa + k)) (Fixed.of_raw sb.(ob + k)))
          done
    | Max ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Fixed.max (Fixed.of_raw sa.(oa + k)) (Fixed.of_raw sb.(ob + k)))
          done
    | _ ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <- Vfu.apply_binary op sa.(oa + k) sb.(ob + k)
          done
  in
  let unary_loop op (sa, oa, _) (dd, od, _) w =
    match (op : Instr.alu_op) with
    | Relu ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw (Fixed.max Fixed.zero (Fixed.of_raw sa.(oa + k)))
          done
    | Sigmoid | Tanh | Log | Exp ->
        (* Hoist the per-op table lookup out of the element loop;
           [Rom_lut.eval_with] is the identical interpolation chain
           [Vfu.apply_unary] reaches through [Rom_lut.eval]. *)
        let tbl = Puma_arch.Rom_lut.table op in
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Puma_arch.Rom_lut.eval_with tbl (Fixed.of_raw sa.(oa + k)))
          done
    | _ ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <- Vfu.apply_unary op ~rng sa.(oa + k)
          done
  in
  let alui_loop op imm (sa, oa, _) (dd, od, _) w =
    match (op : Instr.alu_op) with
    | Add ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Fixed.add (Fixed.of_raw sa.(oa + k)) (Fixed.of_raw imm))
          done
    | Mul ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <-
              Fixed.to_raw
                (Fixed.mul (Fixed.of_raw sa.(oa + k)) (Fixed.of_raw imm))
          done
    | _ ->
        fun () ->
          for k = 0 to w - 1 do
            dd.(od + k) <- Vfu.apply_binary op sa.(oa + k) imm
          done
  in
  let cat_of (_, _, c) = c in
  let decode_one (instr : Instr.t) : unit -> int =
    match instr with
    | Halt ->
        fun () ->
          Core.force_halt core;
          r_halted
    | Mvm { mask; filter = _; stride } ->
        (* Active MVMU indices in ascending order, as [Array.iteri]
           visits them; mask bits beyond the physical MVMUs are ignored. *)
        let actives =
          Array.of_list
            (List.filter
               (fun i -> mask land (1 lsl i) <> 0)
               (List.init (Array.length mvmus) Fun.id))
        in
        let cycles = Latency.mvm cfg in
        let two_dim = 2 * cfg.Puma_hwmodel.Config.mvmu_dim in
        fun () ->
          for k = 0 to Array.length actives - 1 do
            Mvmu.execute_fast mvmus.(actives.(k)) ~stride;
            Energy.add energy Energy.Mvm 1;
            Energy.add energy Energy.Xbar_reg two_dim
          done;
          commit cycles
    | Alu { op; dest; src1; src2; vec_width = w } -> (
        let cycles = Latency.alu cfg ~vec_width:w in
        let lut = Vfu.is_lut_op op in
        match Instr.alu_op_arity op with
        | 1 when op = Subsample -> (
            (* Reads src1 + 2k for k < w: the source view must cover
               2w - 1 elements. *)
            match (view src1 ((2 * w) - 1), view dest w) with
            | Some ((sa, oa, _) as sv), Some ((dd, od, _) as dv) ->
                fun () ->
                  for k = 0 to w - 1 do
                    dd.(od + k) <- sa.(oa + (2 * k))
                  done;
                  Energy.add energy (cat_of sv) (2 * w);
                  Energy.add energy (cat_of dv) w;
                  Energy.add energy Energy.Vfu w;
                  commit cycles
            | _ -> generic)
        | 1 -> (
            match (view src1 w, view dest w) with
            | Some sv, Some dv ->
                let body = unary_loop op sv dv w in
                fun () ->
                  body ();
                  Energy.add energy (cat_of sv) w;
                  Energy.add energy (cat_of dv) w;
                  Energy.add energy Energy.Vfu w;
                  if lut then Energy.add energy Energy.Lut w;
                  commit cycles
            | _ -> generic)
        | _ -> (
            match (view src1 w, view src2 w, view dest w) with
            | Some sv1, Some sv2, Some dv ->
                let body = binary_loop op sv1 sv2 dv w in
                fun () ->
                  body ();
                  Energy.add energy (cat_of sv1) w;
                  Energy.add energy (cat_of sv2) w;
                  Energy.add energy (cat_of dv) w;
                  Energy.add energy Energy.Vfu w;
                  if lut then Energy.add energy Energy.Lut w;
                  commit cycles
            | _ -> generic))
    | Alui { op; dest; src1; imm; vec_width = w } -> (
        let cycles = Latency.alu cfg ~vec_width:w in
        match (view src1 w, view dest w) with
        | Some sv, Some dv ->
            let body = alui_loop op imm sv dv w in
            fun () ->
              body ();
              Energy.add energy (cat_of sv) w;
              Energy.add energy (cat_of dv) w;
              Energy.add energy Energy.Vfu w;
              commit cycles
        | _ -> generic)
    | Alu_int { op; dest; src1; src2 } ->
        fun () ->
          sregs.(dest) <- Sfu.apply op sregs.(src1) sregs.(src2);
          Energy.add energy Energy.Sfu 1;
          commit Latency.alu_int
    | Set { dest; imm } -> (
        match view dest 1 with
        | Some ((dd, od, _) as dv) ->
            fun () ->
              dd.(od) <- imm;
              Energy.add energy (cat_of dv) 1;
              commit Latency.set
        | None -> generic)
    | Set_sreg { dest; imm } ->
        fun () ->
          sregs.(dest) <- imm;
          Energy.add energy Energy.Sfu 1;
          commit Latency.set
    | Copy { dest; src; vec_width = w } -> (
        let cycles = Latency.copy cfg ~vec_width:w in
        match (view src w, view dest w) with
        | Some ((ss, os, _) as sv), Some ((dd, od, _) as dv) ->
            (* Ascending element loop, not a blit: overlapping src/dest
               ranges must copy exactly as the reference path does. *)
            fun () ->
              for k = 0 to w - 1 do
                dd.(od + k) <- ss.(os + k)
              done;
              Energy.add energy (cat_of sv) w;
              Energy.add energy (cat_of dv) w;
              commit cycles
        | _ -> generic)
    | Load { dest; addr; vec_width = w } -> (
        let cycles = Latency.load cfg ~vec_width:w in
        match view dest w with
        | Some ((dd, od, _) as dv) ->
            fun () ->
              let a =
                match addr with
                | Instr.Imm_addr a -> a
                | Instr.Sreg_addr s -> sregs.(s)
              in
              if Shared_mem.read_into smem ~addr:a ~width:w ~dst:dd ~dst_pos:od
              then begin
                Energy.add energy (cat_of dv) w;
                Energy.add energy Energy.Smem w;
                Energy.add energy Energy.Bus w;
                Energy.add energy Energy.Attr 1;
                commit cycles
              end
              else r_blocked_read
        | None -> generic)
    | Store { src; addr; count; vec_width = w } -> (
        let cycles = Latency.store cfg ~vec_width:w in
        match view src w with
        | Some ((ss, os, _) as sv) ->
            fun () ->
              let a =
                match addr with
                | Instr.Imm_addr a -> a
                | Instr.Sreg_addr s -> sregs.(s)
              in
              if
                Shared_mem.write_from smem ~addr:a ~src:ss ~src_pos:os ~width:w
                  ~count
              then begin
                Energy.add energy (cat_of sv) w;
                Energy.add energy Energy.Smem w;
                Energy.add energy Energy.Bus w;
                Energy.add energy Energy.Attr 1;
                commit cycles
              end
              else r_blocked_write
        | None -> generic)
    | Jmp { pc } -> fun () -> commit_jump ~target:pc Latency.jump
    | Brn { op; src1; src2; pc } ->
        fun () ->
          (* SFU charge precedes the register reads, as in the reference. *)
          Energy.add energy Energy.Sfu 1;
          if Sfu.branch_taken op sregs.(src1) sregs.(src2) then
            commit_jump ~target:pc Latency.branch
          else commit Latency.branch
    | Send _ | Receive _ ->
        (* Tile instruction in a core stream: the reference path raises;
           keep that behavior (and its laziness). *)
        generic
  in
  Array.map decode_one (Core.code core)

(* Run one instruction of [core] through its pre-decoded [code]. Mirrors
   the halt/pc-range prologue of [Core.step]: [Core.halted] already
   covers both the flag and an out-of-range pc, and the reference path
   latches the flag in the out-of-range case. *)
let step (core : Core.t) (dec : code) =
  if Core.halted core then begin
    Core.force_halt core;
    r_halted
  end
  else (Array.unsafe_get dec (Core.pc core)) ()
