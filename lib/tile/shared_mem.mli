(** Tile shared memory with the inter-core synchronization attribute
    buffer (Section 4.1.1, Figure 6).

    Every word carries two attributes: [valid] and a consumer [count].
    A counted write ([count > 0]) publishes a value for exactly [count]
    reads: readers block until the word is valid, each successful read
    decrements the count, and the word invalidates when it reaches zero,
    unblocking the next producer. A write with [count = 0] is a plain
    ("sticky") write used for unsynchronized data (spills, host inputs):
    it always succeeds and reads do not consume it. *)

type t

val create : words:int -> t
val words : t -> int

val read : t -> addr:int -> width:int -> int array option
(** [None] if any requested word is invalid (reader must block). On
    success, counted words are consumed as described above. *)

val read_into : t -> addr:int -> width:int -> dst:int array -> dst_pos:int -> bool
(** Allocation-free {!read} for the fast path: on success copies the
    words into [dst] at [dst_pos] and consumes counted words exactly as
    {!read} does; on failure ([false]) touches nothing. *)

val peek : t -> addr:int -> width:int -> int array option
(** Like {!read} but never consumes (host-side inspection). *)

val write : t -> addr:int -> values:int array -> count:int -> bool
(** [false] if any target word is still valid with pending consumers
    (writer must block). [count] applies to every written word. *)

val write_from :
  t -> addr:int -> src:int array -> src_pos:int -> width:int -> count:int -> bool
(** Allocation-free {!write} for the fast path: takes the [width] values
    from [src] at [src_pos] with the same blocking rule and per-word
    update order as {!write}. *)

val host_write : t -> addr:int -> values:int array -> unit
(** Unconditional sticky write (network input injection). *)

val valid : t -> addr:int -> bool
val pending_count : t -> addr:int -> int

val generation : t -> int
(** Monotonic counter bumped by every successful (state-mutating) read or
    write. A blocked access retried while the generation is unchanged is
    guaranteed to block again with no side effects, so schedulers may park
    blocked entities until it moves. *)
