module Rng = Puma_util.Rng

type process =
  | Poisson of { rate_rps : float }
  | Bursty of {
      base_rps : float;
      burst_rps : float;
      period_s : float;
      duty : float;
    }
  | Diurnal of { mean_rps : float; amplitude : float; period_s : float }

let validate p =
  let check ok msg = if ok then Ok p else Error msg in
  match p with
  | Poisson { rate_rps } -> check (rate_rps > 0.0) "poisson rate must be positive"
  | Bursty { base_rps; burst_rps; period_s; duty } ->
      if base_rps < 0.0 then Error "bursty base rate must be nonnegative"
      else if burst_rps <= 0.0 then Error "bursty burst rate must be positive"
      else if burst_rps < base_rps then
        Error "bursty burst rate must be >= the base rate"
      else if period_s <= 0.0 then Error "bursty period must be positive"
      else check (duty > 0.0 && duty < 1.0) "bursty duty must be in (0, 1)"
  | Diurnal { mean_rps; amplitude; period_s } ->
      if mean_rps <= 0.0 then Error "diurnal mean rate must be positive"
      else if amplitude < 0.0 || amplitude > 1.0 then
        Error "diurnal amplitude must be in [0, 1]"
      else check (period_s > 0.0) "diurnal period must be positive"

let parse spec =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let float_field name s =
    match float_of_string_opt (String.trim s) with
    | Some f -> Ok f
    | None -> fail "arrival spec %S: %s is not a number (%S)" spec name s
  in
  let ( let* ) = Result.bind in
  match String.index_opt spec ':' with
  | None ->
      fail "arrival spec %S: expected KIND:PARAMS (poisson:RATE, \
            bursty:BASE,BURST,PERIOD[,DUTY], diurnal:MEAN,AMPLITUDE,PERIOD)"
        spec
  | Some i -> (
      let kind = String.lowercase_ascii (String.sub spec 0 i) in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let fields = String.split_on_char ',' rest in
      let* p =
        match (kind, fields) with
        | "poisson", [ r ] ->
            let* rate_rps = float_field "rate" r in
            Ok (Poisson { rate_rps })
        | "poisson", _ -> fail "arrival spec %S: poisson takes one rate" spec
        | "bursty", ([ b; u; per ] | [ b; u; per; _ ]) ->
            let* base_rps = float_field "base rate" b in
            let* burst_rps = float_field "burst rate" u in
            let* period_s = float_field "period" per in
            let* duty =
              match fields with
              | [ _; _; _; d ] -> float_field "duty" d
              | _ -> Ok 0.5
            in
            Ok (Bursty { base_rps; burst_rps; period_s; duty })
        | "bursty", _ ->
            fail "arrival spec %S: bursty takes BASE,BURST,PERIOD[,DUTY]" spec
        | "diurnal", [ m; a; per ] ->
            let* mean_rps = float_field "mean rate" m in
            let* amplitude = float_field "amplitude" a in
            let* period_s = float_field "period" per in
            Ok (Diurnal { mean_rps; amplitude; period_s })
        | "diurnal", _ ->
            fail "arrival spec %S: diurnal takes MEAN,AMPLITUDE,PERIOD" spec
        | _ ->
            fail "arrival spec %S: unknown process %S (try poisson, bursty, \
                  diurnal)"
              spec kind
      in
      Result.map_error
        (fun e -> Printf.sprintf "arrival spec %S: %s" spec e)
        (validate p))

let to_spec = function
  | Poisson { rate_rps } -> Printf.sprintf "poisson:%g" rate_rps
  | Bursty { base_rps; burst_rps; period_s; duty } ->
      Printf.sprintf "bursty:%g,%g,%g,%g" base_rps burst_rps period_s duty
  | Diurnal { mean_rps; amplitude; period_s } ->
      Printf.sprintf "diurnal:%g,%g,%g" mean_rps amplitude period_s

let rate_at p t =
  match p with
  | Poisson { rate_rps } -> rate_rps
  | Bursty { base_rps; burst_rps; period_s; duty } ->
      let phase = Float.rem t period_s in
      let phase = if phase < 0.0 then phase +. period_s else phase in
      if phase < duty *. period_s then burst_rps else base_rps
  | Diurnal { mean_rps; amplitude; period_s } ->
      mean_rps
      *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t /. period_s)))

let peak_rate = function
  | Poisson { rate_rps } -> rate_rps
  | Bursty { burst_rps; _ } -> burst_rps
  | Diurnal { mean_rps; amplitude; _ } -> mean_rps *. (1.0 +. amplitude)

let mean_rate = function
  | Poisson { rate_rps } -> rate_rps
  | Bursty { base_rps; burst_rps; duty; _ } ->
      (duty *. burst_rps) +. ((1.0 -. duty) *. base_rps)
  | Diurnal { mean_rps; _ } -> mean_rps

(* Thinning (Lewis–Shedler): candidates arrive as a homogeneous Poisson
   process at the envelope rate; candidate k survives with probability
   lambda(t_k) / peak. Each candidate's gap and coin come from its own
   indexed child streams, so the realized sequence is a pure function of
   (process, seed, k) — never of evaluation order. *)
let times p ~seed ~duration_s =
  let envelope = peak_rate p in
  if envelope <= 0.0 || duration_s <= 0.0 then [||]
  else begin
    let root = Rng.create seed in
    let accepted = ref [] in
    let t = ref 0.0 in
    let k = ref 0 in
    let continue = ref true in
    while !continue do
      let gap_rng = Rng.stream root (2 * !k) in
      let coin_rng = Rng.stream root ((2 * !k) + 1) in
      (* 1 - U keeps the argument of log in (0, 1]. *)
      let u = 1.0 -. Rng.float gap_rng 1.0 in
      t := !t +. (-.log u /. envelope);
      if !t >= duration_s then continue := false
      else begin
        if Rng.float coin_rng 1.0 *. envelope <= rate_at p !t then
          accepted := !t :: !accepted;
        incr k
      end
    done;
    Array.of_list (List.rev !accepted)
  end
