module Json = Puma_util.Json
module Program = Puma_isa.Program

type model_spec = {
  name : string;
  priority : int;
  queue_limit : int;
  slo_ms : float option;
}

type outcome =
  | Admitted of {
      start_cycle : int;
      finish_cycle : int;
      node : int;
      cycles : int;
      energy_pj : float;
    }
  | Rejected of { queue_depth : int }

type recorded = { model : int; arrival_cycle : int; outcome : outcome }

type t = {
  mvmu_dim : int;
  nodes : int;
  max_batch : int;
  input_seed : int;
  frequency_ghz : float;
  arrival_spec : string;
  models : model_spec array;
  requests : recorded array;
}

let version = 1

let of_report ?(arrival_spec = "") (models : Engine.model array)
    (report : Engine.report) =
  let requests = Array.make report.Engine.arrivals None in
  Array.iter
    (fun (s : Engine.served) ->
      requests.(s.arrival) <-
        Some
          {
            model = s.model;
            arrival_cycle = s.arrival_cycle;
            outcome =
              Admitted
                {
                  start_cycle = s.start_cycle;
                  finish_cycle = s.finish_cycle;
                  node = s.node;
                  cycles = s.cycles;
                  energy_pj = s.energy_pj;
                };
          })
    report.Engine.served;
  Array.iter
    (fun (r : Engine.rejection) ->
      requests.(r.arrival) <-
        Some
          {
            model = r.model;
            arrival_cycle = r.arrival_cycle;
            outcome = Rejected { queue_depth = r.queue_depth };
          })
    report.Engine.rejections;
  {
    mvmu_dim = models.(0).Engine.program.Program.config.mvmu_dim;
    nodes = report.Engine.nodes;
    max_batch = report.Engine.max_batch;
    input_seed = report.Engine.input_seed;
    frequency_ghz = report.Engine.frequency_ghz;
    arrival_spec;
    models =
      Array.map
        (fun (m : Engine.model) ->
          {
            name = m.Engine.name;
            priority = m.Engine.priority;
            queue_limit = m.Engine.queue_limit;
            slo_ms = m.Engine.slo_ms;
          })
        models;
    requests =
      Array.map
        (function
          | Some r -> r
          | None -> invalid_arg "Trace.of_report: arrival neither served nor rejected")
        requests;
  }

let to_json t =
  let model_json m =
    Json.Obj
      [
        ("name", Json.String m.name);
        ("priority", Json.Int m.priority);
        ("queue_limit", Json.Int m.queue_limit);
        ( "slo_ms",
          match m.slo_ms with None -> Json.Null | Some s -> Json.Float s );
      ]
  in
  let request_json i r =
    let base =
      [
        ("arrival", Json.Int i);
        ("model", Json.Int r.model);
        ("arrival_cycle", Json.Int r.arrival_cycle);
      ]
    in
    Json.Obj
      (base
      @
      match r.outcome with
      | Admitted a ->
          [
            ("admitted", Json.Bool true);
            ("start_cycle", Json.Int a.start_cycle);
            ("finish_cycle", Json.Int a.finish_cycle);
            ("node", Json.Int a.node);
            ("cycles", Json.Int a.cycles);
            ("energy_pj", Json.Float a.energy_pj);
          ]
      | Rejected r ->
          [ ("admitted", Json.Bool false); ("queue_depth", Json.Int r.queue_depth) ])
  in
  Json.Obj
    [
      ("version", Json.Int version);
      ("mvmu_dim", Json.Int t.mvmu_dim);
      ("nodes", Json.Int t.nodes);
      ("max_batch", Json.Int t.max_batch);
      ("input_seed", Json.Int t.input_seed);
      ("frequency_ghz", Json.Float t.frequency_ghz);
      ("arrival_spec", Json.String t.arrival_spec);
      ("models", Json.List (Array.to_list (Array.map model_json t.models)));
      ( "requests",
        Json.List (Array.to_list (Array.mapi request_json t.requests)) );
    ]

let save path t =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

(* --- Loading --- *)

let line_of_offset content offset =
  let line = ref 1 in
  let stop = min offset (String.length content) in
  for i = 0 to stop - 1 do
    if content.[i] = '\n' then incr line
  done;
  !line

exception Bad of string

let need what = function
  | Some v -> v
  | None -> raise (Bad (what ^ " missing or ill-typed"))

let field obj name = Json.member name obj
let int_field obj name = need name (Option.bind (field obj name) Json.to_int)

let float_field obj name =
  need name (Option.bind (field obj name) Json.to_float)

let str_field obj name = need name (Option.bind (field obj name) Json.to_str)

let bool_field obj name =
  need name
    (Option.bind (field obj name) (function
      | Json.Bool b -> Some b
      | _ -> None))

let decode doc =
  let v = int_field doc "version" in
  if v <> version then
    raise (Bad (Printf.sprintf "unsupported trace version %d (want %d)" v version));
  let models =
    need "models" (Option.bind (field doc "models") Json.to_list)
    |> List.map (fun m ->
           {
             name = str_field m "name";
             priority = int_field m "priority";
             queue_limit = int_field m "queue_limit";
             slo_ms =
               (match field m "slo_ms" with
               | None | Some Json.Null -> None
               | Some j -> Some (need "slo_ms" (Json.to_float j)));
           })
    |> Array.of_list
  in
  if Array.length models = 0 then raise (Bad "trace lists no models");
  let requests =
    need "requests" (Option.bind (field doc "requests") Json.to_list)
    |> List.mapi (fun i r ->
           let here what = Printf.sprintf "request %d: %s" i what in
           let model = int_field r "model" in
           if model < 0 || model >= Array.length models then
             raise (Bad (here "model index out of range"));
           let outcome =
             if bool_field r "admitted" then
               Admitted
                 {
                   start_cycle = int_field r "start_cycle";
                   finish_cycle = int_field r "finish_cycle";
                   node = int_field r "node";
                   cycles = int_field r "cycles";
                   energy_pj = float_field r "energy_pj";
                 }
             else Rejected { queue_depth = int_field r "queue_depth" }
           in
           { model; arrival_cycle = int_field r "arrival_cycle"; outcome })
    |> Array.of_list
  in
  Array.iteri
    (fun i r ->
      if i > 0 && r.arrival_cycle < requests.(i - 1).arrival_cycle then
        raise (Bad (Printf.sprintf "request %d arrives out of order" i)))
    requests;
  {
    mvmu_dim = int_field doc "mvmu_dim";
    nodes = int_field doc "nodes";
    max_batch = int_field doc "max_batch";
    input_seed = int_field doc "input_seed";
    frequency_ghz = float_field doc "frequency_ghz";
    arrival_spec = str_field doc "arrival_spec";
    models;
    requests;
  }

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | content -> (
      match Json.parse content with
      | Error e ->
          (* Json.parse errors carry a character offset ("at offset N:
             ..."); surface it as a 1-based line number. *)
          let line =
            try Scanf.sscanf e "at offset %d" (line_of_offset content)
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> 1
          in
          Error (Printf.sprintf "%s: line %d: %s" path line e)
      | Ok doc -> (
          match decode doc with
          | t -> Ok t
          | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)))

let workload_of t =
  Array.map
    (fun r -> { Engine.cycle = r.arrival_cycle; model = r.model })
    t.requests

let config_of t =
  { Engine.nodes = t.nodes; max_batch = t.max_batch; input_seed = t.input_seed }

let check t (report : Engine.report) =
  if Array.length t.requests <> report.Engine.arrivals then
    Error
      (Printf.sprintf "trace has %d requests, replay served %d arrivals"
         (Array.length t.requests) report.Engine.arrivals)
  else begin
    (* Rebuild per-arrival outcomes from the replayed report. *)
    let n = report.Engine.arrivals in
    let got = Array.make n None in
    Array.iter
      (fun (s : Engine.served) ->
        got.(s.arrival) <-
          Some
            ( s.model,
              s.arrival_cycle,
              Admitted
                {
                  start_cycle = s.start_cycle;
                  finish_cycle = s.finish_cycle;
                  node = s.node;
                  cycles = s.cycles;
                  energy_pj = s.energy_pj;
                } ))
      report.Engine.served;
    Array.iter
      (fun (r : Engine.rejection) ->
        got.(r.arrival) <-
          Some
            (r.model, r.arrival_cycle, Rejected { queue_depth = r.queue_depth }))
      report.Engine.rejections;
    let result = ref (Ok ()) in
    (try
       Array.iteri
         (fun i want ->
           let fail fmt =
             Printf.ksprintf
               (fun s ->
                 result := Error (Printf.sprintf "arrival %d: %s" i s);
                 raise Exit)
               fmt
           in
           match got.(i) with
           | None -> fail "replay lost the request"
           | Some (model, cycle, outcome) ->
               if model <> want.model then
                 fail "model %d, trace recorded %d" model want.model;
               if cycle <> want.arrival_cycle then
                 fail "arrival cycle %d, trace recorded %d" cycle
                   want.arrival_cycle;
               (match (outcome, want.outcome) with
               | Admitted a, Admitted w ->
                   if a.start_cycle <> w.start_cycle then
                     fail "start cycle %d, trace recorded %d" a.start_cycle
                       w.start_cycle;
                   if a.finish_cycle <> w.finish_cycle then
                     fail "finish cycle %d, trace recorded %d" a.finish_cycle
                       w.finish_cycle;
                   if a.node <> w.node then
                     fail "node %d, trace recorded %d" a.node w.node;
                   if a.cycles <> w.cycles then
                     fail "cost %d cycles, trace recorded %d" a.cycles w.cycles;
                   if a.energy_pj <> w.energy_pj then
                     fail "energy %.17g pJ, trace recorded %.17g" a.energy_pj
                       w.energy_pj
               | Rejected a, Rejected w ->
                   if a.queue_depth <> w.queue_depth then
                     fail "rejected at depth %d, trace recorded %d"
                       a.queue_depth w.queue_depth
               | Admitted _, Rejected _ -> fail "admitted, trace rejected it"
               | Rejected _, Admitted _ -> fail "rejected, trace admitted it"))
         t.requests
     with Exit -> ());
    !result
  end
