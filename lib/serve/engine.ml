module Batch = Puma_runtime.Batch
module Cluster = Puma_cluster.Cluster
module Node = Puma_sim.Node
module Energy = Puma_hwmodel.Energy
module Pool = Puma_util.Pool
module Rng = Puma_util.Rng
module Stats = Puma_util.Stats
module Json = Puma_util.Json
module Table = Puma_util.Table
module Program = Puma_isa.Program

type model = {
  name : string;
  program : Program.t;
  priority : int;
  queue_limit : int;
  slo_ms : float option;
}

let model ?(priority = 0) ?(queue_limit = 0) ?slo_ms ~name program =
  if queue_limit < 0 then
    invalid_arg "Engine.model: queue_limit must be nonnegative";
  { name; program; priority; queue_limit; slo_ms }

type config = { nodes : int; max_batch : int; input_seed : int }

let default_config = { nodes = 4; max_batch = 4; input_seed = 7 }

type arrival = { cycle : int; model : int }
type workload = arrival array

let cycle_of_s ~frequency_ghz s =
  int_of_float (Float.round (s *. frequency_ghz *. 1e9))

let synthesize ~models process ~seed ~duration_s ~frequency_ghz =
  if models <= 0 then invalid_arg "Engine.synthesize: no models";
  let ts = Arrival.times process ~seed ~duration_s in
  (* Index -1 is outside the candidate streams Arrival.times consumes
     (2k, 2k+1 for k >= 0), so assignment draws never collide with gap or
     acceptance draws. *)
  let assign = Rng.stream (Rng.create seed) (-1) in
  Array.mapi
    (fun k t ->
      {
        cycle = cycle_of_s ~frequency_ghz t;
        model = (if models = 1 then 0 else Rng.int (Rng.stream assign k) models);
      })
    ts

let model_input_seed ~input_seed ~model =
  Batch.request_seed ~seed:input_seed ~index:model

let validate_workload models (workload : workload) =
  let nm = Array.length models in
  if nm = 0 then invalid_arg "Engine: no models";
  Array.iteri
    (fun i a ->
      if a.model < 0 || a.model >= nm then
        invalid_arg
          (Printf.sprintf "Engine: arrival %d names model %d of %d" i a.model
             nm);
      if a.cycle < 0 then
        invalid_arg (Printf.sprintf "Engine: arrival %d at negative cycle" i);
      if i > 0 && a.cycle < workload.(i - 1).cycle then
        invalid_arg
          (Printf.sprintf "Engine: workload not sorted at arrival %d" i))
    workload

(* Per-arrival index into its model's request stream. *)
let model_request_indices models (workload : workload) =
  let next = Array.make (Array.length models) 0 in
  Array.map
    (fun a ->
      let r = next.(a.model) in
      next.(a.model) <- r + 1;
      r)
    workload

let model_counts models (workload : workload) =
  let counts = Array.make (Array.length models) 0 in
  Array.iter (fun a -> counts.(a.model) <- counts.(a.model) + 1) workload;
  counts

let requests_for config models workload m =
  validate_workload models workload;
  if m < 0 || m >= Array.length models then
    invalid_arg "Engine.requests_for: model index out of range";
  let counts = model_counts models workload in
  Batch.random_requests models.(m).program ~batch:counts.(m)
    ~seed:(model_input_seed ~input_seed:config.input_seed ~model:m)

type cost = {
  cycles : int;
  energy_pj : float;
  outputs : (string * float array) list;
}

type served = {
  arrival : int;
  model : int;
  model_request : int;
  arrival_cycle : int;
  start_cycle : int;
  finish_cycle : int;
  node : int;
  cycles : int;
  energy_pj : float;
  outputs : (string * float array) list;
}

type rejection = {
  arrival : int;
  model : int;
  model_request : int;
  arrival_cycle : int;
  queue_depth : int;
}

type model_stats = {
  name : string;
  arrivals : int;
  served : int;
  rejected : int;
  rejection_rate : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  mean_queue_depth : float;
  max_queue_depth : int;
  slo_ms : float option;
  slo_attainment : float;
  dynamic_energy_uj : float;
  throughput_rps : float;
}

type report = {
  nodes : int;
  max_batch : int;
  input_seed : int;
  frequency_ghz : float;
  arrivals : int;
  served : served array;
  rejections : rejection array;
  makespan_cycles : int;
  utilization : float;
  models : model_stats array;
  dynamic_energy_uj : float;
  static_energy_uj : float;
  total_energy_uj : float;
  event_cycles : int array;
}

(* Completion events, keyed (cycle, schedule sequence number): a plain
   binary min-heap; the sequence number makes the ordering total, so the
   loop is deterministic even when several nodes finish on one cycle. *)
module Heap = struct
  type t = { mutable a : (int * int * int) array; mutable len : int }

  let create () = { a = Array.make 16 (0, 0, 0); len = 0 }

  let less (c1, s1, _) (c2, s2, _) = c1 < c2 || (c1 = c2 && s1 < s2)

  let push h x =
    if h.len = Array.length h.a then begin
      let a = Array.make (2 * h.len) h.a.(0) in
      Array.blit h.a 0 a 0 h.len;
      h.a <- a
    end;
    h.a.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let peek h = if h.len = 0 then None else Some h.a.(0)

  let pop h =
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && less h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && less h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
end

let schedule (config : config) models (workload : workload) (costs : cost array) =
  validate_workload models workload;
  if config.nodes < 1 then invalid_arg "Engine.schedule: nodes must be >= 1";
  if config.max_batch < 1 then
    invalid_arg "Engine.schedule: max_batch must be >= 1";
  let n = Array.length workload in
  let nm = Array.length models in
  if Array.length costs <> n then
    invalid_arg "Engine.schedule: one cost per arrival";
  Array.iteri
    (fun i (c : cost) ->
      if c.cycles <= 0 then
        invalid_arg
          (Printf.sprintf "Engine.schedule: arrival %d has cost %d cycles" i
             c.cycles))
    costs;
  let mreq = model_request_indices models workload in
  (* Per-model waiting queues of arrival indices. *)
  let queues = Array.init nm (fun _ -> Queue.create ()) in
  let depth = Array.make nm 0 in
  let depth_integral = Array.make nm 0.0 in
  let max_depth = Array.make nm 0 in
  let free = Array.make config.nodes true in
  let heap = Heap.create () in
  let comp_seq = ref 0 in
  let busy_cycles = ref 0 in
  let served_acc = ref [] in
  let rejected_acc = ref [] in
  let events = ref (Array.make 64 0) in
  let n_events = ref 0 in
  let now = ref 0 in
  let advance t =
    assert (t >= !now);
    if t > !now then begin
      let dt = Float.of_int (t - !now) in
      for m = 0 to nm - 1 do
        depth_integral.(m) <- depth_integral.(m) +. (Float.of_int depth.(m) *. dt)
      done;
      now := t
    end;
    if !n_events = Array.length !events then begin
      let a = Array.make (2 * !n_events) 0 in
      Array.blit !events 0 a 0 !n_events;
      events := a
    end;
    !events.(!n_events) <- t;
    incr n_events
  in
  let first_free () =
    let rec go i =
      if i = config.nodes then None else if free.(i) then Some i else go (i + 1)
    in
    go 0
  in
  (* Highest priority first; ties to the earliest waiting head, then the
     lowest model index — FIFO within a priority class. *)
  let pick_model () =
    let best = ref (-1) in
    for m = nm - 1 downto 0 do
      if depth.(m) > 0 then
        if !best < 0 then best := m
        else begin
          let b = !best in
          let pm = models.(m).priority and pb = models.(b).priority in
          if
            pm > pb
            || pm = pb
               && workload.(Queue.peek queues.(m)).cycle
                  < workload.(Queue.peek queues.(b)).cycle
          then best := m
        end
    done;
    if !best < 0 then None else Some !best
  in
  let rec dispatch () =
    match first_free () with
    | None -> ()
    | Some nd -> (
        match pick_model () with
        | None -> ()
        | Some m ->
            free.(nd) <- false;
            let start = !now in
            let finish = ref start in
            let b = ref 0 in
            while !b < config.max_batch && depth.(m) > 0 do
              let idx = Queue.pop queues.(m) in
              depth.(m) <- depth.(m) - 1;
              let c = costs.(idx) in
              finish := !finish + c.cycles;
              busy_cycles := !busy_cycles + c.cycles;
              served_acc :=
                {
                  arrival = idx;
                  model = m;
                  model_request = mreq.(idx);
                  arrival_cycle = workload.(idx).cycle;
                  start_cycle = start;
                  finish_cycle = !finish;
                  node = nd;
                  cycles = c.cycles;
                  energy_pj = c.energy_pj;
                  outputs = c.outputs;
                }
                :: !served_acc;
              incr b
            done;
            Heap.push heap (!finish, !comp_seq, nd);
            incr comp_seq;
            dispatch ())
  in
  let do_completion () =
    let c, _, nd = Heap.pop heap in
    advance c;
    free.(nd) <- true;
    dispatch ()
  in
  let ai = ref 0 in
  let do_arrival () =
    let idx = !ai in
    incr ai;
    let a = workload.(idx) in
    advance a.cycle;
    let m = a.model in
    let limit = models.(m).queue_limit in
    if limit > 0 && depth.(m) >= limit then
      rejected_acc :=
        {
          arrival = idx;
          model = m;
          model_request = mreq.(idx);
          arrival_cycle = a.cycle;
          queue_depth = depth.(m);
        }
        :: !rejected_acc
    else begin
      Queue.push idx queues.(m);
      depth.(m) <- depth.(m) + 1;
      if depth.(m) > max_depth.(m) then max_depth.(m) <- depth.(m);
      dispatch ()
    end
  in
  let continue = ref true in
  while !continue do
    match (Heap.peek heap, !ai < n) with
    | None, false -> continue := false
    (* Completions before arrivals on a shared cycle: a node that frees
       exactly when a request lands serves it immediately. *)
    | Some (c, _, _), true when c <= workload.(!ai).cycle -> do_completion ()
    | Some _, false -> do_completion ()
    | _, true -> do_arrival ()
  done;
  let by_arrival (a : served) (b : served) = compare a.arrival b.arrival in
  let served = Array.of_list (List.sort by_arrival !served_acc) in
  let rejections =
    Array.of_list
      (List.sort
         (fun (a : rejection) b -> compare a.arrival b.arrival)
         !rejected_acc)
  in
  let freq = models.(0).program.Program.config.frequency_ghz in
  let makespan = !now in
  let makespan_s = Float.of_int makespan /. (freq *. 1e9) in
  let ms_of_cycles c = Float.of_int c /. (freq *. 1e6) in
  let counts = model_counts models workload in
  let dynamic_pj =
    Array.fold_left (fun acc (s : served) -> acc +. s.energy_pj) 0.0 served
  in
  let stats =
    Array.mapi
      (fun m (mdl : model) ->
        let lats =
          Array.of_list
            (List.rev
               (Array.fold_left
                  (fun acc (s : served) ->
                    if s.model = m then
                      ms_of_cycles (s.finish_cycle - s.arrival_cycle) :: acc
                    else acc)
                  [] served))
        in
        let served_n = Array.length lats in
        let rejected_n =
          Array.fold_left
            (fun acc (r : rejection) -> if r.model = m then acc + 1 else acc)
            0 rejections
        in
        let pct p = if served_n = 0 then 0.0 else Stats.percentile lats p in
        let energy_pj =
          Array.fold_left
            (fun acc (s : served) ->
              if s.model = m then acc +. s.energy_pj else acc)
            0.0 served
        in
        {
          name = mdl.name;
          arrivals = counts.(m);
          served = served_n;
          rejected = rejected_n;
          rejection_rate =
            (if counts.(m) = 0 then 0.0
             else Float.of_int rejected_n /. Float.of_int counts.(m));
          p50_ms = pct 50.0;
          p99_ms = pct 99.0;
          p999_ms = pct 99.9;
          mean_queue_depth =
            (if makespan = 0 then 0.0
             else depth_integral.(m) /. Float.of_int makespan);
          max_queue_depth = max_depth.(m);
          slo_ms = mdl.slo_ms;
          slo_attainment =
            (match mdl.slo_ms with
            | None -> 1.0
            | Some slo ->
                if served_n = 0 then 1.0
                else
                  Float.of_int
                    (Array.fold_left
                       (fun acc l -> if l <= slo then acc + 1 else acc)
                       0 lats)
                  /. Float.of_int served_n);
          dynamic_energy_uj = energy_pj /. 1.0e6;
          throughput_rps =
            (if makespan_s = 0.0 then 0.0
             else Float.of_int served_n /. makespan_s);
        })
      models
  in
  let static_pj =
    let tiles =
      config.nodes
      * Array.fold_left
          (fun acc (m : model) -> acc + Batch.tiles_used m.program)
          0 models
    in
    let ledger = Energy.create models.(0).program.Program.config in
    Energy.add_static ledger ~tiles ~cycles:(Float.of_int makespan);
    Energy.total_pj ledger
  in
  {
    nodes = config.nodes;
    max_batch = config.max_batch;
    input_seed = config.input_seed;
    frequency_ghz = freq;
    arrivals = n;
    served;
    rejections;
    makespan_cycles = makespan;
    utilization =
      (if makespan = 0 then 0.0
       else
         Float.of_int !busy_cycles /. Float.of_int (config.nodes * makespan));
    models = stats;
    dynamic_energy_uj = dynamic_pj /. 1.0e6;
    static_energy_uj = static_pj /. 1.0e6;
    total_energy_uj = (dynamic_pj +. static_pj) /. 1.0e6;
    event_cycles = Array.sub !events 0 !n_events;
  }

(* Per-request dynamic energy from event-count deltas, exactly as
   Puma_runtime.Batch computes it: integer counts make a request's energy
   independent of whatever the worker node served before. *)
let energy_counts node =
  Array.of_list
    (List.map (Energy.count (Node.energy node)) Energy.all_categories)

let energy_delta_pj config ~before ~after =
  List.fold_left
    (fun (i, acc) cat ->
      let events = after.(i) - before.(i) in
      (i + 1, acc +. (Float.of_int events *. Energy.per_event_pj config cat)))
    (0, 0.0) Energy.all_categories
  |> snd

let cluster_energy_counts cluster =
  Array.of_list (List.map snd (Cluster.energy_counts cluster))

let run ?domains ?fast ?cluster_nodes ?topology (config : config) models
    (workload : workload) =
  validate_workload models workload;
  let cluster_nodes =
    match cluster_nodes with
    | Some c when c < 1 ->
        invalid_arg (Printf.sprintf "Engine.run: %d cluster nodes" c)
    | Some c when c > 1 -> Some c
    | Some _ | None -> None
  in
  let n = Array.length workload in
  let mreq = model_request_indices models workload in
  let counts = model_counts models workload in
  let requests =
    Array.init (Array.length models) (fun m ->
        Array.of_list
          (Batch.random_requests models.(m).program ~batch:counts.(m)
             ~seed:(model_input_seed ~input_seed:config.input_seed ~model:m)))
  in
  let costs =
    if n = 0 then [||]
    else
      Pool.map_init ?domains ~n
        ~init:(fun ~worker:_ ->
          (* One warmed backend per resident model, built lazily so a
             worker only pays for the models it actually serves. With
             [cluster_nodes], every fleet slot is a whole multi-chip
             cluster instead of a single node. *)
          Array.map
            (fun (m : model) ->
              lazy
                (match cluster_nodes with
                | Some nodes ->
                    `Cluster (Batch.warmed_cluster ?topology ~nodes m.program)
                | None -> `Node (Batch.warmed_node ?fast m.program)))
            models)
        (fun backends i ->
          let a = workload.(i) in
          let req : Batch.request = requests.(a.model).(mreq.(i)) in
          let prog_config = models.(a.model).program.Program.config in
          match Lazy.force backends.(a.model) with
          | `Node node ->
              let c0 = Node.cycles node in
              let e0 = energy_counts node in
              let outputs = Node.run node ~inputs:req.Batch.inputs in
              {
                cycles = Node.cycles node - c0;
                energy_pj =
                  energy_delta_pj prog_config ~before:e0
                    ~after:(energy_counts node);
                outputs;
              }
          | `Cluster cluster ->
              let c0 = Cluster.cycles cluster in
              let e0 = cluster_energy_counts cluster in
              let outputs = Cluster.run cluster ~inputs:req.Batch.inputs in
              {
                cycles = Cluster.cycles cluster - c0;
                energy_pj =
                  energy_delta_pj prog_config ~before:e0
                    ~after:(cluster_energy_counts cluster);
                outputs;
              })
  in
  schedule config models workload costs

let latency_ms report (s : served) =
  Float.of_int (s.finish_cycle - s.arrival_cycle)
  /. (report.frequency_ghz *. 1e6)

let report_table report =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Serving report: %d arrivals on %d nodes (max batch %d)"
           report.arrivals report.nodes report.max_batch)
      ~headers:
        [
          "model"; "arrivals"; "served"; "rej%"; "p50 ms"; "p99 ms";
          "p99.9 ms"; "queue avg/max"; "SLO"; "inf/s"; "energy uJ";
        ]
  in
  Array.iter
    (fun (m : model_stats) ->
      Table.add_row t
        [
          m.name;
          string_of_int m.arrivals;
          string_of_int m.served;
          Printf.sprintf "%.1f" (100.0 *. m.rejection_rate);
          Printf.sprintf "%.4f" m.p50_ms;
          Printf.sprintf "%.4f" m.p99_ms;
          Printf.sprintf "%.4f" m.p999_ms;
          Printf.sprintf "%.1f/%d" m.mean_queue_depth m.max_queue_depth;
          (match m.slo_ms with
          | None -> "-"
          | Some _ -> Printf.sprintf "%.1f%%" (100.0 *. m.slo_attainment));
          Printf.sprintf "%.0f" m.throughput_rps;
          Printf.sprintf "%.3f" (m.dynamic_energy_uj);
        ])
    report.models;
  t

let pp_report fmt r =
  let served = Array.length r.served and rej = Array.length r.rejections in
  Format.fprintf fmt
    "@[<v>arrivals            %d (%d served, %d rejected)@,\
     fleet               %d nodes, max batch %d, utilization %.1f%%@,\
     makespan            %d cycles (%.4f ms virtual)@,\
     energy              %.3f uJ (%.3f dynamic + %.3f static)"
    r.arrivals served rej r.nodes r.max_batch
    (100.0 *. r.utilization)
    r.makespan_cycles
    (Float.of_int r.makespan_cycles /. (r.frequency_ghz *. 1e6))
    r.total_energy_uj r.dynamic_energy_uj r.static_energy_uj;
  Array.iter
    (fun (m : model_stats) ->
      Format.fprintf fmt
        "@,%-10s p50/p99/p99.9  %.4f / %.4f / %.4f ms; rejected %.1f%%; \
         queue %.1f avg / %d max%s"
        m.name m.p50_ms m.p99_ms m.p999_ms
        (100.0 *. m.rejection_rate)
        m.mean_queue_depth m.max_queue_depth
        (match m.slo_ms with
        | None -> ""
        | Some slo ->
            Printf.sprintf "; SLO %.3f ms attained %.1f%%" slo
              (100.0 *. m.slo_attainment)))
    r.models;
  Format.fprintf fmt "@]"

let to_json r =
  let model_json (m : model_stats) =
    Json.Obj
      [
        ("name", Json.String m.name);
        ("arrivals", Json.Int m.arrivals);
        ("served", Json.Int m.served);
        ("rejected", Json.Int m.rejected);
        ("rejection_rate", Json.Float m.rejection_rate);
        ("p50_ms", Json.Float m.p50_ms);
        ("p99_ms", Json.Float m.p99_ms);
        ("p999_ms", Json.Float m.p999_ms);
        ("mean_queue_depth", Json.Float m.mean_queue_depth);
        ("max_queue_depth", Json.Int m.max_queue_depth);
        ( "slo_ms",
          match m.slo_ms with None -> Json.Null | Some s -> Json.Float s );
        ("slo_attainment", Json.Float m.slo_attainment);
        ("dynamic_energy_uj", Json.Float m.dynamic_energy_uj);
        ("throughput_rps", Json.Float m.throughput_rps);
      ]
  in
  let served_json (s : served) =
    Json.Obj
      [
        ("arrival", Json.Int s.arrival);
        ("model", Json.Int s.model);
        ("model_request", Json.Int s.model_request);
        ("arrival_cycle", Json.Int s.arrival_cycle);
        ("admitted", Json.Bool true);
        ("start_cycle", Json.Int s.start_cycle);
        ("finish_cycle", Json.Int s.finish_cycle);
        ("node", Json.Int s.node);
        ("cycles", Json.Int s.cycles);
        ("energy_pj", Json.Float s.energy_pj);
      ]
  in
  let rejection_json (j : rejection) =
    Json.Obj
      [
        ("arrival", Json.Int j.arrival);
        ("model", Json.Int j.model);
        ("model_request", Json.Int j.model_request);
        ("arrival_cycle", Json.Int j.arrival_cycle);
        ("admitted", Json.Bool false);
        ("queue_depth", Json.Int j.queue_depth);
      ]
  in
  (* Served and rejected records interleave back into arrival order. *)
  let requests =
    let out = ref [] in
    let si = ref 0 and ri = ref 0 in
    let ns = Array.length r.served and nr = Array.length r.rejections in
    while !si < ns || !ri < nr do
      if
        !ri = nr
        || (!si < ns && r.served.(!si).arrival < r.rejections.(!ri).arrival)
      then begin
        out := served_json r.served.(!si) :: !out;
        incr si
      end
      else begin
        out := rejection_json r.rejections.(!ri) :: !out;
        incr ri
      end
    done;
    List.rev !out
  in
  Json.Obj
    [
      ("nodes", Json.Int r.nodes);
      ("max_batch", Json.Int r.max_batch);
      ("input_seed", Json.Int r.input_seed);
      ("frequency_ghz", Json.Float r.frequency_ghz);
      ("arrivals", Json.Int r.arrivals);
      ("makespan_cycles", Json.Int r.makespan_cycles);
      ("utilization", Json.Float r.utilization);
      ("dynamic_energy_uj", Json.Float r.dynamic_energy_uj);
      ("static_energy_uj", Json.Float r.static_energy_uj);
      ("total_energy_uj", Json.Float r.total_energy_uj);
      ("models", Json.List (Array.to_list (Array.map model_json r.models)));
      ("requests", Json.List requests);
    ]
