(** Serving-run record / replay.

    A trace file is one JSON document capturing everything a serving run
    decided: the fleet shape, the resident models (by name, with their
    scheduling parameters and the crossbar dimension they were compiled
    at), and one record per arrival — its model, arrival cycle, and
    admission fate (with start/finish/node/cycles/energy for admitted
    requests). Because the engine is deterministic, replaying the
    recorded workload through a freshly compiled fleet must reproduce
    every decision bit for bit; {!check} verifies that and names the
    first divergence.

    Format (version 1):
    {v
    { "version": 1, "mvmu_dim": 128, "nodes": 4, "max_batch": 4,
      "input_seed": 7, "frequency_ghz": 1.0, "arrival_spec": "poisson:2000",
      "models": [ {"name": "mlp", "priority": 0, "queue_limit": 0,
                   "slo_ms": null}, ... ],
      "requests": [ {"arrival": 0, "model": 0, "model_request": 0,
                     "arrival_cycle": 312, "admitted": true,
                     "start_cycle": 312, "finish_cycle": 730, "node": 0,
                     "cycles": 418, "energy_pj": 6190.5}, ... ] }
    v}
    Request inputs are not stored: they regenerate from [input_seed] and
    the per-model request index ({!Engine.model_input_seed}). *)

type model_spec = {
  name : string;
  priority : int;
  queue_limit : int;
  slo_ms : float option;
}

type outcome =
  | Admitted of {
      start_cycle : int;
      finish_cycle : int;
      node : int;
      cycles : int;
      energy_pj : float;
    }
  | Rejected of { queue_depth : int }

type recorded = { model : int; arrival_cycle : int; outcome : outcome }

type t = {
  mvmu_dim : int;
  nodes : int;
  max_batch : int;
  input_seed : int;
  frequency_ghz : float;
  arrival_spec : string;  (** {!Arrival.to_spec} of the generating process
                              ([""] for a hand-built workload). *)
  models : model_spec array;
  requests : recorded array;  (** In arrival order. *)
}

val of_report :
  ?arrival_spec:string -> Engine.model array -> Engine.report -> t

val to_json : t -> Puma_util.Json.t

val save : string -> t -> unit
(** Write the JSON document (with a trailing newline) to a file. *)

val load : string -> (t, string) result
(** Read a trace back. Errors are prefixed with the file path; JSON
    syntax errors name the 1-based line of the failure
    (["trace.json: line 3: ..."]), structural errors name the missing or
    ill-typed field. *)

val workload_of : t -> Engine.workload
(** The recorded arrival sequence, ready to re-{!Engine.run}. *)

val config_of : t -> Engine.config

val check : t -> Engine.report -> (unit, string) result
(** Compare a replayed report against the recorded decisions: admission
    fate, start/finish/node, cycles and energy must all match on every
    arrival. The error names the first mismatching arrival and field. *)
