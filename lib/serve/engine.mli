(** Multi-tenant serving runtime: a warmed node fleet under a
    deterministic virtual-clock event loop.

    The paper's deployment scenario: crossbars are weight-pinned, so many
    models co-reside on a node fleet at zero weight-movement cost, and an
    open stream of requests plays against them. This engine makes that
    scenario measurable — and exactly reproducible:

    - {b Virtual clock.} All scheduling runs in simulated cycles; nothing
      in the decision path reads a wall clock. The event loop's time is
      monotone (asserted, and exposed as [report.event_cycles] for the
      property tests).
    - {b Two phases.} A request's outputs, cycle cost and dynamic energy
      are functions of its model and inputs alone, so phase 1 simulates
      every arrival on per-worker warmed nodes (sharded over
      {!Puma_util.Pool}, exactly the {!Puma_runtime.Batch} computation —
      the differential tests pin bit-identity), and phase 2 ({!schedule})
      is a pure, single-threaded discrete-event loop over those costs.
      Reports are therefore independent of the host domain count.
    - {b Fleet semantics.} [nodes] simulated nodes each hold {e every}
      model resident (co-residency on disjoint tiles). A free node is
      dispatched the head of the highest-priority non-empty model queue
      (ties: earliest waiting head, then lowest model index) and serves up
      to [max_batch] requests of that model back to back: request [i] of
      the batch completes at [start + sum of the first i+1 costs], the
      node frees at the last completion (continuous batching: inputs
      stream through the pinned weights).
    - {b Admission.} A model whose waiting queue holds [queue_limit]
      requests rejects new arrivals (0 = unbounded). Every arrival is
      either served exactly once or rejected exactly once (the
      conservation property).

    Rejected arrivals are still simulated in phase 1 (their admission
    fate is unknown until the event loop runs); their outputs are
    discarded and only host time is spent. *)

type model = {
  name : string;
  program : Puma_isa.Program.t;
  priority : int;  (** Higher dispatches first; default 0. *)
  queue_limit : int;  (** Admission bound on waiting requests; 0 = none. *)
  slo_ms : float option;  (** Latency target, reporting only. *)
}

val model :
  ?priority:int ->
  ?queue_limit:int ->
  ?slo_ms:float ->
  name:string ->
  Puma_isa.Program.t ->
  model

type config = {
  nodes : int;  (** Simulated fleet size. *)
  max_batch : int;  (** Largest same-model dispatch. *)
  input_seed : int;  (** Root seed of every request's inputs. *)
}

val default_config : config
(** 4 nodes, max_batch 4, input_seed 7. *)

type arrival = { cycle : int; model : int }

type workload = arrival array
(** Arrivals sorted by [cycle] (ties keep array order). *)

val synthesize :
  models:int ->
  Arrival.process ->
  seed:int ->
  duration_s:float ->
  frequency_ghz:float ->
  workload
(** Draw arrival times from the process ({!Arrival.times}) and assign
    arrival [k] a model uniformly from the indexed child stream
    [Rng.stream assign k] — both pure functions of [(seed, k)]. *)

val model_input_seed : input_seed:int -> model:int -> int
(** The {!Puma_runtime.Batch.random_requests} seed of one model's request
    stream: a {!Puma_runtime.Batch.request_seed} mix of [input_seed] and
    the model index, so co-resident models draw decorrelated inputs. *)

val requests_for :
  config -> model array -> workload -> int -> Puma_runtime.Batch.request list
(** [requests_for config models workload m]: the exact request list model
    [m] receives over the workload, in per-model arrival order — feed it
    to {!Puma_runtime.Batch.run} to reproduce the serve outputs
    bit-identically (the differential anchor). *)

type cost = {
  cycles : int;  (** Service time of the request, simulated cycles. *)
  energy_pj : float;  (** Its dynamic energy. *)
  outputs : (string * float array) list;
}

type served = {
  arrival : int;  (** Global arrival index. *)
  model : int;
  model_request : int;  (** Index into the model's request stream. *)
  arrival_cycle : int;
  start_cycle : int;  (** Dispatch cycle of its batch. *)
  finish_cycle : int;
  node : int;
  cycles : int;
  energy_pj : float;
  outputs : (string * float array) list;
}

type rejection = {
  arrival : int;
  model : int;
  model_request : int;
  arrival_cycle : int;
  queue_depth : int;  (** Waiting requests that caused the rejection. *)
}

type model_stats = {
  name : string;
  arrivals : int;
  served : int;
  rejected : int;
  rejection_rate : float;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;  (** Latency percentiles over served requests. *)
  mean_queue_depth : float;  (** Time-weighted over the makespan. *)
  max_queue_depth : int;
  slo_ms : float option;
  slo_attainment : float;  (** Served within SLO / served; 1.0 if no SLO. *)
  dynamic_energy_uj : float;
  throughput_rps : float;  (** Served over the makespan. *)
}

type report = {
  nodes : int;
  max_batch : int;
  input_seed : int;
  frequency_ghz : float;
  arrivals : int;
  served : served array;  (** In arrival order. *)
  rejections : rejection array;  (** In arrival order. *)
  makespan_cycles : int;
      (** Virtual time of the last processed event — the last completion,
          or a later rejected arrival (0 for an empty workload). *)
  utilization : float;  (** Busy node-cycles / (nodes * makespan). *)
  models : model_stats array;
  dynamic_energy_uj : float;
  static_energy_uj : float;
      (** Leakage/clock energy of every resident model's tiles on all
          [nodes] over the makespan — co-residency's standing cost. *)
  total_energy_uj : float;
  event_cycles : int array;
      (** Virtual time of every processed event, in processing order
          (nondecreasing — the clock-monotonicity witness). *)
}

val schedule : config -> model array -> workload -> cost array -> report
(** The pure phase-2 event loop: given every arrival's cost, play the
    workload through the fleet. Raises [Invalid_argument] on an empty
    model list, non-positive [nodes]/[max_batch], unsorted workload,
    out-of-range model indices, a cost array of the wrong length, or
    non-positive cycle costs. Deterministic: equal inputs give equal
    reports, bit for bit. *)

val run :
  ?domains:int ->
  ?fast:bool ->
  ?cluster_nodes:int ->
  ?topology:Puma_noc.Fabric.topology ->
  config ->
  model array ->
  workload ->
  report
(** Phase 1 + phase 2: simulate every arrival's request on per-worker
    warmed nodes ([domains] shards the host work, default
    {!Puma_util.Pool.default_domains}; the report is bit-identical for
    any value), then {!schedule}. [fast] selects the simulator fast path
    (bit-identical either way).

    [cluster_nodes > 1] serves every request on a
    {!Puma_cluster.Cluster} of that many chips (fabric [topology],
    default mesh): [config.nodes] remains the {e fleet} size the
    dispatcher schedules over, while [cluster_nodes] is the size of each
    machine in that fleet. Per-arrival cycles and energy then come from
    the cluster's global clock and summed ledgers. *)

val latency_ms : report -> served -> float
(** Queue wait + service, virtual milliseconds. *)

val pp_report : Format.formatter -> report -> unit

val report_table : report -> Puma_util.Table.t
(** Per-model rows (latency percentiles, rejection rate, queue depths,
    SLO attainment, energy, throughput). *)

val to_json : report -> Puma_util.Json.t
(** Machine-readable report: the summary plus one record per arrival (in
    arrival order, served and rejected interleaved) — the payload the
    {!Trace} record/replay format embeds. *)
