(** A single physical crossbar: one bit-slice of a logical matrix.

    The crossbar holds [dim x dim] analog device levels. Applying a vector
    of digital inputs at the rows yields, per column, the analog sum
    [sum_j level(i, j) * x(j)] (Kirchhoff's law after integration). The
    input convention follows the MVM orientation [y = W x]: row index [i]
    of the *logical matrix* maps to a crossbar column, so [mvm_acc]
    returns one accumulator per logical output. *)

type t

val create : dim:int -> device:Device.t -> t
val dim : t -> int
val device : t -> Device.t

val write : t -> ?rng:Puma_util.Rng.t -> int -> int -> int -> unit
(** [write t ~rng i j level] programs the device at logical position
    [(i, j)] (serial configuration-time write, Section 3.2.5). *)

val level : t -> int -> int -> float
(** Stored (possibly noisy) analog level. *)

val force : t -> int -> int -> float -> unit
(** Overwrite a cell's analog level directly (fault injection: stuck-at
    states bypass the programming path). *)

val mvm_acc : t -> float array -> float array
(** [mvm_acc t x] is the vector of column sums [sum_j level(i,j) * x(j)]
    for an arbitrary analog input [x] (length [dim]). *)

val mvm_acc_into : t -> float array -> float array -> unit
(** [mvm_acc_into t x out] writes {!mvm_acc}[ t x] into the caller's
    scratch buffer [out] (length [dim]) with the identical accumulation
    order, so the float results are bit-identical while the hot loop
    allocates nothing. *)

val mvm_acc_binary : t -> int array -> float array
(** Specialized bit-plane pass: inputs are 0/1 (one DAC bit-plane of the
    streamed input). *)
