(** SAR ADC behavioural model.

    The ADC converts an analog column accumulation into a digital value at
    a given resolution. With exact (noise-free) devices the per-bit-plane
    column sum of a [dim]-row crossbar with [b]-bit cells needs exactly
    [log2 dim + b] bits, so the conservatively-provisioned PUMA ADC is
    lossless; with write noise the rounding and clamping here are where
    analog error enters the digital domain. *)

type t = { resolution : int }

val create : resolution:int -> t

val for_config : Puma_hwmodel.Config.t -> t
(** Resolution [log2 mvmu_dim + bits_per_cell] (Section 6.1's SAR design). *)

val max_code : t -> int
(** [2^resolution - 1]. *)

val convert : t -> float -> int
(** Round to nearest integer code, clamped to [0, max_code]. *)

val shift_weights :
  num_slices:int -> low_bits:int -> bits_per_cell:int -> int array
(** Per-slice shift-and-add weights (2^slice-offset) for digitizing a
    bit-sliced stack whose least-significant slice holds [low_bits] bits;
    precomputed once per stack so the MVM loop never recomputes shifts. *)
