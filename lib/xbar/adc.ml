type t = { resolution : int }

let create ~resolution =
  if resolution < 1 then invalid_arg "Adc.create: resolution must be >= 1";
  { resolution }

let for_config (c : Puma_hwmodel.Config.t) =
  create
    ~resolution:
      (Puma_hwmodel.Scaling.adc_resolution ~dim:c.mvmu_dim
         ~bits_per_cell:c.bits_per_cell)

let max_code t = (1 lsl t.resolution) - 1

let convert t v =
  let code = Float.to_int (Float.round v) in
  if code < 0 then 0 else if code > max_code t then max_code t else code

(* Per-slice shift-and-add weights for a bit-sliced stack: slice [s]'s
   digitized column sum contributes with weight 2^(offset of slice s),
   where the least-significant slice holds [low_bits] bits and every
   higher slice holds [bits_per_cell]. Precomputed once per stack so the
   MVM loop never recomputes shifts. *)
let shift_weights ~num_slices ~low_bits ~bits_per_cell =
  Array.init num_slices (fun s ->
      if s = 0 then 1 else 1 lsl (low_bits + ((s - 1) * bits_per_cell)))
