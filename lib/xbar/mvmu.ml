module Fixed = Puma_util.Fixed
module Tensor = Puma_util.Tensor

type t = {
  config : Puma_hwmodel.Config.t;
  mutable stack : Bitslice.t;
  xbar_in : int array;
  xbar_out : int array;
}

let create (c : Puma_hwmodel.Config.t) =
  let zero = Tensor.mat_create c.mvmu_dim c.mvmu_dim in
  {
    config = c;
    stack = Bitslice.create c zero;
    xbar_in = Array.make c.mvmu_dim 0;
    xbar_out = Array.make c.mvmu_dim 0;
  }

let program t ?rng ?fault m =
  t.stack <- Bitslice.create t.config ?rng ?fault m
let dim t = t.config.mvmu_dim
let xbar_in t = t.xbar_in
let xbar_out t = t.xbar_out

let inject_stuck t rng ~rate = Bitslice.inject_stuck t.stack rng ~rate

let execute t ~stride =
  let d = dim t in
  let input =
    if stride = 0 then t.xbar_in
    else Array.init d (fun j -> t.xbar_in.((j + stride) mod d))
  in
  let acc = Bitslice.mvm_raw t.stack input in
  for i = 0 to d - 1 do
    t.xbar_out.(i) <- Fixed.to_raw (Fixed.of_acc acc.(i))
  done

let mvm t x =
  assert (Array.length x = dim t);
  Array.iteri (fun j v -> t.xbar_in.(j) <- Fixed.to_raw v) x;
  execute t ~stride:0;
  Array.map Fixed.of_raw t.xbar_out
