module Fixed = Puma_util.Fixed
module Tensor = Puma_util.Tensor

type t = {
  config : Puma_hwmodel.Config.t;
  mutable stack : Bitslice.t;
  xbar_in : int array;
  xbar_out : int array;
  (* Reusable buffers for [execute_fast]: the stride-permuted input view
     and the raw accumulator, so steady-state MVMs allocate nothing. *)
  in_scratch : int array;
  acc_scratch : int array;
}

let create (c : Puma_hwmodel.Config.t) =
  let zero = Tensor.mat_create c.mvmu_dim c.mvmu_dim in
  {
    config = c;
    stack = Bitslice.create c zero;
    xbar_in = Array.make c.mvmu_dim 0;
    xbar_out = Array.make c.mvmu_dim 0;
    in_scratch = Array.make c.mvmu_dim 0;
    acc_scratch = Array.make c.mvmu_dim 0;
  }

let program t ?rng ?fault m =
  t.stack <- Bitslice.create t.config ?rng ?fault m
let dim t = t.config.mvmu_dim
let xbar_in t = t.xbar_in
let xbar_out t = t.xbar_out

let inject_stuck t rng ~rate = Bitslice.inject_stuck t.stack rng ~rate

let execute t ~stride =
  let d = dim t in
  let input =
    if stride = 0 then t.xbar_in
    else Array.init d (fun j -> t.xbar_in.((j + stride) mod d))
  in
  let acc = Bitslice.mvm_raw t.stack input in
  for i = 0 to d - 1 do
    t.xbar_out.(i) <- Fixed.to_raw (Fixed.of_acc acc.(i))
  done

(* Allocation-free [execute] used by the pre-decoded fast path. Exact
   stacks route through the integer kernel into the reused accumulator;
   noisy stacks (write noise or faults present) fall back to [execute],
   whose float chain both paths share, keeping results bit-identical. *)
let execute_fast t ~stride =
  if Bitslice.is_noisy t.stack then execute t ~stride
  else begin
    let d = dim t in
    let input =
      if stride = 0 then t.xbar_in
      else begin
        let s = t.in_scratch in
        for j = 0 to d - 1 do
          s.(j) <- t.xbar_in.((j + stride) mod d)
        done;
        s
      end
    in
    let acc = t.acc_scratch in
    Bitslice.mvm_raw_exact_into t.stack input acc;
    for i = 0 to d - 1 do
      t.xbar_out.(i) <- Fixed.to_raw (Fixed.of_acc acc.(i))
    done
  end

let mvm t x =
  assert (Array.length x = dim t);
  Array.iteri (fun j v -> t.xbar_in.(j) <- Fixed.to_raw v) x;
  execute t ~stride:0;
  Array.map Fixed.of_raw t.xbar_out
