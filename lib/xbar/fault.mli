(** Declarative device/circuit fault models for crossbar stacks.

    PUMA's evaluation treats memristor write noise as the only
    non-ideality, but real in-memory inference chips also degrade from
    stuck cells, dead lines, conductance drift and ADC offset (the
    dominant accuracy risks reported for fabricated PCM inference chips).
    This module describes those faults declaratively and realizes them
    deterministically per crossbar stack from seeded {!Puma_util.Rng}
    child streams, so any campaign point is bit-reproducible from
    [(model, seed, tile, core, mvmu)].

    Orientation: a crossbar stack computes [out(i) = sum_j w(i,j) * x(j)].
    Input line [j] is a physical wordline (a "crossbar row"); output line
    [i] is a physical bitline (a "crossbar column"). A dead input line
    drops contribution [x(j)] everywhere; a dead output line zeroes
    [out(i)] entirely. *)

(** Declarative fault model: per-device / per-line Bernoulli rates plus
    the deterministic drift and ADC impairments. All rates are
    probabilities in [0, 1]; [ideal] has every impairment off. *)
type t = {
  stuck_rate : float;
      (** Per physical device (each bit-slice of each polarity): the
          device is stuck at one of its extreme conductances. *)
  stuck_on_fraction : float;
      (** Fraction of stuck devices pinned at max conductance (ON); the
          rest are stuck OFF. *)
  dead_in_rate : float;
      (** Per input line (wordline / "crossbar row") of the stack. *)
  dead_out_rate : float;
      (** Per output line (bitline / "crossbar column") of the stack. *)
  drift_tau_cycles : float;
      (** Conductance-drift time constant in cycles ([<= 0] disables). *)
  drift_age_cycles : float;
      (** Age at read time: every cell has decayed toward its mid-level
          by [exp (-. age /. tau)]. *)
  adc_offset_sigma : float;
      (** Sigma (in ADC LSBs) of the static per-column conversion offset
          added to each slice digitization. *)
}

val ideal : t
(** Every impairment off. *)

val is_ideal : t -> bool

val validate : t -> (t, string) result
(** Checks rates are in [0, 1] and sigmas/taus are non-negative. *)

val pp : Format.formatter -> t -> unit

(** One realized stuck device inside a crossbar stack. *)
type stuck = {
  slice : int;  (** Bit-slice index within the polarity stack. *)
  negative : bool;  (** Polarity stack (differential pair). *)
  out_line : int;
  in_line : int;
  on : bool;  (** Stuck at max conductance (ON) or zero (OFF). *)
}

(** The realized fault set of one crossbar stack (one MVMU): which
    physical devices and lines are broken, plus the deterministic drift
    factor and static ADC offsets. *)
type instance = {
  dim : int;
  stuck : stuck list;
  dead_in : bool array;  (** Indexed by input line. *)
  dead_out : bool array;  (** Indexed by output line. *)
  drift_factor : float;  (** 1.0 = no drift. *)
  adc_offset : int array array;
      (** [adc_offset.(slice).(out_line)] in LSBs; [[||]] when off. *)
}

val is_null : instance -> bool
(** No stuck devices, no dead lines, no drift, no ADC offset. *)

val count : instance -> int
(** Faulty elements: stuck devices plus dead lines (each line counts
    once). *)

(** Fault-aware line remapping (computed by [Puma_fault.Remap]):
    logical line [k] of the programmed matrix is placed on physical line
    [perm.(k)]. Both arrays are permutations of [0 .. dim-1]; the MVM
    routes inputs/outputs through them, so in exact arithmetic a
    permuted stack is equivalent to an unpermuted one — the only effect
    is which physical devices hold which logical weights. *)
type perms = { out_perm : int array; in_perm : int array }

val identity_perms : dim:int -> perms
val is_identity : perms -> bool

(** Everything {!Bitslice} needs to materialize one faulty stack. *)
type spec = { instance : instance; perms : perms option }

(** A node-level fault plan: the declarative model, the campaign seed it
    is realized from, and the remap table filled in by the fault-aware
    remapping pass (keyed by [(tile, core, mvmu)]). *)
type plan = {
  model : t;
  seed : int;
  remap : (int * int * int, perms) Hashtbl.t;
}

val plan : ?seed:int -> t -> plan
(** A plan with an empty remap table (default [seed = 0]). *)

val realize_instance :
  t ->
  seed:int ->
  tile:int ->
  core:int ->
  mvmu:int ->
  dim:int ->
  slices:int ->
  instance
(** Deterministically realize the fault set of the stack at
    [(tile, core, mvmu)]: independent {!Puma_util.Rng} child streams are
    derived from the seed and the coordinates, so the result never
    depends on evaluation order or on any other stack. *)

val realize :
  plan -> config:Puma_hwmodel.Config.t -> tile:int -> core:int -> mvmu:int ->
  spec option
(** The spec for one MVMU under the plan, or [None] when there is
    nothing to inject or remap there (the caller keeps the exact
    fast path — a zero-fault plan is bit-identical to no plan). *)
