(** A logical signed 16-bit matrix realized as bit-sliced crossbars.

    Section 3.2.1: a 16-bit MVM combines [16 / bits_per_cell] physical
    crossbars, each storing one [bits_per_cell]-wide slice of the weight
    magnitude. Signed weights use the standard differential encoding: one
    crossbar stack for positive parts and one for negative parts, with the
    digital subtraction done after the ADCs.

    Two evaluation paths:
    - with zero write noise (and no [~rng]) the stack is bit-exact
      w.r.t. the integer matrix-vector product of the quantized weights
      (the ADC is conservatively provisioned to be lossless), evaluated
      directly;
    - with an [~rng] the physical slice stacks are materialized and the
      column currents are accumulated with the stored (noisy/faulted)
      analog levels, digitized once per slice and combined by
      shift-and-add. The conversion chain itself is conservatively
      provisioned to be lossless (Section 3.2.1), which the
      materialized-but-noise-free case demonstrates by matching the exact
      path bit-for-bit. *)

type t

val create :
  Puma_hwmodel.Config.t ->
  ?rng:Puma_util.Rng.t ->
  ?fault:Fault.spec ->
  Puma_util.Tensor.mat ->
  t
(** Quantize a float matrix (shape exactly [dim x dim]; use
    {!Puma_util.Tensor.mat_sub_block} to pad) to 16-bit fixed point and
    program the crossbar stack. [rng] enables write noise with the
    config's [write_noise_sigma]. [fault] materializes the stack (even
    without an [rng]) and applies the realized device/circuit faults:
    weights are programmed through the spec's remap permutations, then
    conductance drift, stuck devices and dead lines are applied to the
    stored levels, and static ADC offsets perturb each slice
    digitization on the read path. *)

val dim : t -> int
val num_slices : t -> int

val logical_raw : t -> int -> int -> int
(** The quantized (noise-free) raw weight at (i, j). *)

val mvm_raw : t -> int array -> int array
(** [mvm_raw t x_raw] returns per-output accumulators in raw product units
    (2 * frac_bits fraction bits), as produced by the shift-and-add
    reduction; rescale with {!Puma_util.Fixed.of_acc}. *)

val mvm_raw_exact_into : t -> int array -> int array -> unit
(** Exact-path kernel writing the raw accumulators into the caller's
    scratch buffer (length [dim]): identical integer arithmetic to the
    exact {!mvm_raw} path without the per-call allocation. Only
    meaningful when [not (is_noisy t)] (it ignores the physical
    stacks). *)

val mvm_fixed : t -> Puma_util.Fixed.t array -> Puma_util.Fixed.t array
(** Full 16-bit MVM returning rescaled fixed-point outputs. *)

val is_noisy : t -> bool
(** True when physical slice stacks are materialized (created with
    [~rng] and/or [~fault]); the exact fast path is used otherwise. *)

val inject_stuck : t -> Puma_util.Rng.t -> rate:float -> int
(** Stuck-at fault injection: each physical device independently sticks
    at its lowest or highest conductance with probability [rate]
    (yield/endurance failures, cf. the paper's reliability discussion).
    Returns the number of faulted devices; raises [Invalid_argument] on a
    stack without physical devices. *)
