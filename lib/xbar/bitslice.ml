module Fixed = Puma_util.Fixed
module Tensor = Puma_util.Tensor
module Bits = Puma_util.Bits

type t = {
  dim : int;
  bits_per_cell : int;
  low_bits : int;  (** Width of the least-significant (possibly partial) slice. *)
  num_slices : int;
  noisy : bool;
  adc : Adc.t;
  (* Quantized signed raw weights, row-major; the exact-path operand. *)
  logical : int array;
  (* [logical] mirrored into an unboxed float array for the fast exact
     kernel: with |w| <= Fixed.max_raw < 2^15 and inputs bounded by
     [x_limit], every product and partial sum is an integer below 2^53,
     so the float dot product is exactly the integer one (float64
     represents all such integers exactly). *)
  logical_f : float array;
  (* Largest input magnitude for which the float kernel is provably
     exact: dim * (Fixed.max_raw * x_limit) <= 2^52. Inputs beyond it
     (possible only in hand-written programs that [Set] oversized
     immediates) fall back to the integer loop. *)
  x_limit : int;
  (* Range scaling: stored conductances hold [raw lsl scale_shift] so the
     matrix spans the full device range (maximizing noise margin, as in
     ISAAC's per-matrix mapping); the digital shift-and-add undoes it. *)
  scale_shift : int;
  (* Fault-aware line remapping: logical line k lives on physical line
     perm.(k). None = identity routing. *)
  perms : Fault.perms option;
  (* Static ADC conversion offsets per (slice, physical output line), in
     LSBs; [||] when the fault model has none. *)
  adc_offset : int array array;
  (* Per-polarity slice stacks, only materialized when noisy. *)
  pos : Crossbar.t array;
  neg : Crossbar.t array;
  (* Precomputed shift-and-add weight per slice (2^slice-offset). *)
  slice_weight : int array;
  (* Reusable float scratch for the noisy MVM path (input vector and the
     per-slice positive/negative column sums), so a steady-state inference
     allocates only its digital output vector. *)
  nf_x : float array;
  nf_p : float array;
  nf_n : float array;
}

let magnitude_parts raw =
  (* Differential pair: raw = pos - neg with pos, neg >= 0. The single
     non-representable magnitude -32768 clamps to -32767. *)
  if raw >= 0 then (raw, 0)
  else
    let m = min (-raw) Fixed.max_raw in
    (0, m)

(* Post-programming fault application: drift relaxes every stored level
   toward the device mid-level, then stuck devices pin to their extreme
   conductances, then dead lines zero out (an open line contributes no
   current). Order matters: a stuck or dead device does not drift. *)
let apply_instance ~dim ~pos ~neg (f : Fault.instance) =
  if f.dim <> dim then
    invalid_arg
      (Printf.sprintf "Bitslice: fault instance dim %d does not match stack %d"
         f.dim dim);
  let each g =
    Array.iter g pos;
    Array.iter g neg
  in
  if f.drift_factor < 1.0 then
    each (fun xb ->
        let mid = Float.of_int (Device.max_level (Crossbar.device xb)) /. 2.0 in
        for i = 0 to dim - 1 do
          for j = 0 to dim - 1 do
            let v = Crossbar.level xb i j in
            Crossbar.force xb i j (mid +. ((v -. mid) *. f.drift_factor))
          done
        done);
  List.iter
    (fun (s : Fault.stuck) ->
      let stack = if s.negative then neg else pos in
      let xb = stack.(s.slice) in
      let level =
        if s.on then Float.of_int (Device.max_level (Crossbar.device xb))
        else 0.0
      in
      Crossbar.force xb s.out_line s.in_line level)
    f.stuck;
  Array.iteri
    (fun j dead ->
      if dead then
        each (fun xb ->
            for i = 0 to dim - 1 do
              Crossbar.force xb i j 0.0
            done))
    f.dead_in;
  Array.iteri
    (fun i dead ->
      if dead then
        each (fun xb ->
            for j = 0 to dim - 1 do
              Crossbar.force xb i j 0.0
            done))
    f.dead_out

let create (c : Puma_hwmodel.Config.t) ?rng ?fault (m : Tensor.mat) =
  let dim = c.mvmu_dim in
  if m.Tensor.rows <> dim || m.Tensor.cols <> dim then
    invalid_arg
      (Printf.sprintf "Bitslice.create: matrix must be %dx%d (got %dx%d)" dim
         dim m.Tensor.rows m.Tensor.cols);
  let bits = c.bits_per_cell in
  let num_slices = Puma_hwmodel.Config.slices c in
  (* Physical slice stacks are materialized whenever an RNG (write noise)
     or a fault spec is supplied; without either the exact fast path is
     used. *)
  let noisy = Option.is_some rng || Option.is_some fault in
  let perms =
    match fault with
    | Some { Fault.perms = Some p; _ } ->
        if Array.length p.out_perm <> dim || Array.length p.in_perm <> dim then
          invalid_arg "Bitslice.create: remap permutation length mismatch";
        Some p
    | _ -> None
  in
  let device = Device.create ~bits ~sigma:c.write_noise_sigma in
  let logical = Array.make (dim * dim) 0 in
  let make_stack () =
    Array.init num_slices (fun _ -> Crossbar.create ~dim ~device)
  in
  let pos = if noisy then make_stack () else [||] in
  let neg = if noisy then make_stack () else [||] in
  for i = 0 to dim - 1 do
    for j = 0 to dim - 1 do
      let raw = Fixed.to_raw (Fixed.of_float (Tensor.get m i j)) in
      let raw = if raw = Fixed.min_raw then -Fixed.max_raw else raw in
      logical.((i * dim) + j) <- raw
    done
  done;
  (* Spread the matrix over the full conductance range. *)
  let max_mag = Array.fold_left (fun a v -> max a (abs v)) 0 logical in
  let scale_shift =
    if max_mag = 0 then 0
    else begin
      let rec go k = if max_mag lsl (k + 1) <= Fixed.max_raw then go (k + 1) else k in
      go 0
    end
  in
  (* The 15 magnitude bits are grouped from the top down, so any partial
     group lands in the least-significant slice: high-order devices always
     use their full range (best noise margin where errors cost most). *)
  let low_bits =
    let r = 15 mod bits in
    if r = 0 then bits else r
  in
  let slice_offset s = if s = 0 then 0 else low_bits + ((s - 1) * bits) in
  let split value =
    Array.init num_slices (fun s ->
        let width = if s = 0 then low_bits else bits in
        (value lsr slice_offset s) land ((1 lsl width) - 1))
  in
  if noisy then begin
    (* Logical line k is programmed onto physical line perm.(k); the MVM
       path routes through the same permutation, so in exact arithmetic a
       remapped stack is equivalent — only the physical placement (and
       therefore which faults land under live weights) changes. *)
    let out_line, in_line =
      match perms with
      | None -> (Fun.id, Fun.id)
      | Some p -> ((fun i -> p.Fault.out_perm.(i)), fun j -> p.Fault.in_perm.(j))
    in
    for i = 0 to dim - 1 do
      for j = 0 to dim - 1 do
        let raw = logical.((i * dim) + j) lsl scale_shift in
        let p, n = magnitude_parts raw in
        let pslices = split p and nslices = split n in
        let pi = out_line i and pj = in_line j in
        for s = 0 to num_slices - 1 do
          Crossbar.write pos.(s) ?rng pi pj pslices.(s);
          Crossbar.write neg.(s) ?rng pi pj nslices.(s)
        done
      done
    done;
    match fault with
    | Some f -> apply_instance ~dim ~pos ~neg f.Fault.instance
    | None -> ()
  end;
  {
    dim;
    bits_per_cell = bits;
    low_bits;
    num_slices;
    noisy;
    adc = Adc.for_config c;
    logical;
    logical_f = Array.map Float.of_int logical;
    x_limit = (1 lsl 52) / (Fixed.max_raw * dim);
    scale_shift;
    perms;
    adc_offset =
      (match fault with
      | Some { Fault.instance = { adc_offset; _ }; _ } -> adc_offset
      | None -> [||]);
    pos;
    neg;
    slice_weight = Adc.shift_weights ~num_slices ~low_bits ~bits_per_cell:bits;
    nf_x = Array.make dim 0.0;
    nf_p = Array.make dim 0.0;
    nf_n = Array.make dim 0.0;
  }

let dim t = t.dim
let num_slices t = t.num_slices
let logical_raw t i j = t.logical.((i * t.dim) + j)
let is_noisy t = t.noisy

let mvm_raw_exact t x =
  Array.init t.dim (fun i ->
      let base = i * t.dim in
      let acc = ref 0 in
      for j = 0 to t.dim - 1 do
        acc := !acc + (t.logical.(base + j) * x.(j))
      done;
      !acc)

(* Scratch-buffer exact kernel for the pre-decoded fast path: computes
   exactly the same integer results as [mvm_raw_exact] (exact arithmetic,
   so accumulation order and number representation are immaterial)
   without the per-call output allocation or bounds checks.

   The hot variant runs in float64 over the mirrored [logical_f] weights:
   every product and partial sum stays an integer below 2^53 (see
   [x_limit]), where float64 arithmetic is exact, and it avoids the boxed
   tagged-int multiply sequence. Four independent accumulators break the
   serial add dependency chain, which is what actually bounds the scalar
   integer loop. Inputs beyond [x_limit] take the integer loop instead. *)
let mvm_raw_exact_into t x out =
  assert (Array.length x = t.dim && Array.length out = t.dim);
  let d = t.dim in
  let xf = t.nf_x in
  let limit = t.x_limit in
  let exactable = ref true in
  for j = 0 to d - 1 do
    let v = Array.unsafe_get x j in
    if v > limit || v < -limit then exactable := false;
    Array.unsafe_set xf j (Float.of_int v)
  done;
  if !exactable then begin
    let wf = t.logical_f in
    for i = 0 to d - 1 do
      let base = i * d in
      let a0 = ref 0.0 and a1 = ref 0.0 and a2 = ref 0.0 and a3 = ref 0.0 in
      let j = ref 0 in
      while !j + 3 < d do
        let k = base + !j in
        a0 := !a0 +. (Array.unsafe_get wf k *. Array.unsafe_get xf !j);
        a1 := !a1 +. (Array.unsafe_get wf (k + 1) *. Array.unsafe_get xf (!j + 1));
        a2 := !a2 +. (Array.unsafe_get wf (k + 2) *. Array.unsafe_get xf (!j + 2));
        a3 := !a3 +. (Array.unsafe_get wf (k + 3) *. Array.unsafe_get xf (!j + 3));
        j := !j + 4
      done;
      let acc = ref (!a0 +. !a1 +. !a2 +. !a3) in
      while !j < d do
        acc := !acc +. (Array.unsafe_get wf (base + !j) *. Array.unsafe_get xf !j);
        incr j
      done;
      Array.unsafe_set out i (Float.to_int !acc)
    done
  end
  else begin
    let w = t.logical in
    for i = 0 to d - 1 do
      let base = i * d in
      let acc = ref 0 in
      for j = 0 to d - 1 do
        acc := !acc + (Array.unsafe_get w (base + j) * Array.unsafe_get x j)
      done;
      Array.unsafe_set out i !acc
    done
  end

(* Noisy-device path. The conversion chain itself is conservatively
   provisioned to be lossless (Section 3.2.1's no-accuracy-compromise
   claim; the [Dac]/[Adc] models and the exact-path equality test document
   that), so the analog impairments reduce to the programmed conductance
   levels plus the static per-column ADC conversion offset: each slice's
   column currents are accumulated with the stored (noisy/faulted) analog
   levels, digitized once per slice, and combined by shift-and-add.
   Inputs and outputs route through the fault-remap permutations when
   present. *)
let mvm_raw_noisy t x =
  let d = t.dim in
  let xf = t.nf_x in
  (* The permutation covers every index, so the scatter (re)writes the
     whole scratch vector — no stale data survives between calls. *)
  (match t.perms with
  | None ->
      for j = 0 to d - 1 do
        xf.(j) <- Float.of_int x.(j)
      done
  | Some p ->
      for j = 0 to d - 1 do
        xf.(p.Fault.in_perm.(j)) <- Float.of_int x.(j)
      done);
  let accp = t.nf_p and accn = t.nf_n in
  let out = Array.make d 0 in
  for s = 0 to t.num_slices - 1 do
    let sw = t.slice_weight.(s) in
    Crossbar.mvm_acc_into t.pos.(s) xf accp;
    Crossbar.mvm_acc_into t.neg.(s) xf accn;
    let off = if t.adc_offset = [||] then [||] else t.adc_offset.(s) in
    for i = 0 to d - 1 do
      let phys =
        match t.perms with None -> i | Some p -> p.Fault.out_perm.(i)
      in
      let digital = Float.to_int (Float.round (accp.(phys) -. accn.(phys))) in
      let digital = if off = [||] then digital else digital + off.(phys) in
      out.(i) <- out.(i) + (digital * sw)
    done
  done;
  out

let mvm_raw t x =
  assert (Array.length x = t.dim);
  if t.noisy then begin
    let scaled = mvm_raw_noisy t x in
    (* Undo the range scaling with round-to-nearest. *)
    let k = t.scale_shift in
    if k = 0 then scaled
    else
      Array.map
        (fun v ->
          let half = 1 lsl (k - 1) in
          if v >= 0 then (v + half) asr k else -((-v + half) asr k))
        scaled
  end
  else mvm_raw_exact t x

(* Stuck-at fault injection: each physical device independently sticks at
   its lowest or highest conductance with probability [rate]. Requires a
   materialized stack (create with ~rng). Returns the number of faults. *)
let inject_stuck t rng ~rate =
  if not t.noisy then
    invalid_arg "Bitslice.inject_stuck: stack has no physical devices (create with ~rng)";
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Bitslice.inject_stuck: rate must be in [0, 1]";
  let count = ref 0 in
  let zap xb =
    let d = Crossbar.device xb in
    let max_l = Float.of_int (Device.max_level d) in
    for i = 0 to t.dim - 1 do
      for j = 0 to t.dim - 1 do
        if Puma_util.Rng.float rng 1.0 < rate then begin
          incr count;
          let stuck = if Puma_util.Rng.bool rng then max_l else 0.0 in
          Crossbar.force xb i j stuck
        end
      done
    done
  in
  Array.iter zap t.pos;
  Array.iter zap t.neg;
  !count

let mvm_fixed t x =
  let raw = mvm_raw t (Array.map Fixed.to_raw x) in
  Array.map Fixed.of_acc raw
