(** Matrix-Vector Multiplication Unit: bit-sliced crossbar stack plus the
    XbarIn / XbarOut register interface (Figure 1) and logical input
    shuffling (Section 3.2.3).

    The MVM instruction's [stride] operand re-routes XbarIn registers to
    DACs as a circular rotation: the effective input at DAC row [j] is
    XbarIn register [(j + stride) mod dim]. Sliding-window codegen keeps a
    circular window buffer in XbarIn, writes only the new elements, and
    rotates — reusing ~[(filter-1)/filter] of the inputs without physical
    data movement. *)

type t

val create : Puma_hwmodel.Config.t -> t
(** An unprogrammed MVMU (weights all zero, exact path). *)

val program :
  t ->
  ?rng:Puma_util.Rng.t ->
  ?fault:Fault.spec ->
  Puma_util.Tensor.mat ->
  unit
(** Configuration-time serial weight write (Section 3.2.5). [fault]
    injects realized device/circuit faults into the programmed stack
    (see {!Bitslice.create}). *)

val dim : t -> int

val xbar_in : t -> int array
(** The XbarIn registers (raw 16-bit values); mutate to supply inputs. *)

val xbar_out : t -> int array
(** The XbarOut registers, written by {!execute}. *)

val inject_stuck : t -> Puma_util.Rng.t -> rate:float -> int
(** Inject stuck-at faults into the programmed crossbar stack (see
    {!Bitslice.inject_stuck}). *)

val execute : t -> stride:int -> unit
(** Perform the analog MVM: reads XbarIn (rotated by [stride]), writes
    XbarOut. *)

val execute_fast : t -> stride:int -> unit
(** Allocation-free {!execute} for the pre-decoded fast path: exact
    stacks run the integer kernel through reused scratch buffers; noisy
    stacks (write noise or faults) fall back to {!execute}. Results are
    bit-identical to {!execute} in both cases. *)

val mvm : t -> Puma_util.Fixed.t array -> Puma_util.Fixed.t array
(** Convenience: load XbarIn, execute with no shuffling, read XbarOut. *)
