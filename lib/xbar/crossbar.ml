type t = { dim : int; device : Device.t; cells : float array (* row-major *) }

let create ~dim ~device =
  if dim <= 0 then invalid_arg "Crossbar.create: dim must be positive";
  { dim; device; cells = Array.make (dim * dim) 0.0 }

let dim t = t.dim
let device t = t.device

let write t ?rng i j level =
  if i < 0 || i >= t.dim || j < 0 || j >= t.dim then
    invalid_arg "Crossbar.write: position out of range";
  t.cells.((i * t.dim) + j) <- Device.program t.device rng level

let level t i j = t.cells.((i * t.dim) + j)

let force t i j v =
  if i < 0 || i >= t.dim || j < 0 || j >= t.dim then
    invalid_arg "Crossbar.force: position out of range";
  t.cells.((i * t.dim) + j) <- v

let mvm_acc t x =
  assert (Array.length x = t.dim);
  Array.init t.dim (fun i ->
      let base = i * t.dim in
      let acc = ref 0.0 in
      for j = 0 to t.dim - 1 do
        acc := !acc +. (t.cells.(base + j) *. x.(j))
      done;
      !acc)

(* Scratch-buffer variant of [mvm_acc]: writes the row sums into [out]
   instead of allocating. The accumulation order (ascending [j] per row)
   is identical to [mvm_acc], so the float results are bit-identical. *)
let mvm_acc_into t x out =
  assert (Array.length x = t.dim && Array.length out = t.dim);
  let d = t.dim in
  let cells = t.cells in
  for i = 0 to d - 1 do
    let base = i * d in
    let acc = ref 0.0 in
    for j = 0 to d - 1 do
      acc :=
        !acc +. (Array.unsafe_get cells (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set out i !acc
  done

let mvm_acc_binary t bits =
  assert (Array.length bits = t.dim);
  Array.init t.dim (fun i ->
      let base = i * t.dim in
      let acc = ref 0.0 in
      for j = 0 to t.dim - 1 do
        if bits.(j) <> 0 then acc := !acc +. t.cells.(base + j)
      done;
      !acc)
