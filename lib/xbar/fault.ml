module Rng = Puma_util.Rng

type t = {
  stuck_rate : float;
  stuck_on_fraction : float;
  dead_in_rate : float;
  dead_out_rate : float;
  drift_tau_cycles : float;
  drift_age_cycles : float;
  adc_offset_sigma : float;
}

let ideal =
  {
    stuck_rate = 0.0;
    stuck_on_fraction = 0.5;
    dead_in_rate = 0.0;
    dead_out_rate = 0.0;
    drift_tau_cycles = 0.0;
    drift_age_cycles = 0.0;
    adc_offset_sigma = 0.0;
  }

let drift_active m = m.drift_tau_cycles > 0.0 && m.drift_age_cycles > 0.0

let is_ideal m =
  m.stuck_rate = 0.0 && m.dead_in_rate = 0.0 && m.dead_out_rate = 0.0
  && m.adc_offset_sigma = 0.0
  && not (drift_active m)

let validate m =
  let rate name v acc =
    match acc with
    | Error _ -> acc
    | Ok _ when v < 0.0 || v > 1.0 ->
        Error (Printf.sprintf "%s must be in [0, 1] (got %g)" name v)
    | Ok _ -> acc
  in
  let nonneg name v acc =
    match acc with
    | Error _ -> acc
    | Ok _ when v < 0.0 -> Error (Printf.sprintf "%s must be >= 0 (got %g)" name v)
    | Ok _ -> acc
  in
  Ok m
  |> rate "stuck_rate" m.stuck_rate
  |> rate "stuck_on_fraction" m.stuck_on_fraction
  |> rate "dead_in_rate" m.dead_in_rate
  |> rate "dead_out_rate" m.dead_out_rate
  |> nonneg "drift_tau_cycles" m.drift_tau_cycles
  |> nonneg "drift_age_cycles" m.drift_age_cycles
  |> nonneg "adc_offset_sigma" m.adc_offset_sigma

let pp fmt m =
  Format.fprintf fmt
    "@[<h>faults: stuck=%g (on %g) dead_in=%g dead_out=%g drift=%g/%gcyc \
     adc_sigma=%g@]"
    m.stuck_rate m.stuck_on_fraction m.dead_in_rate m.dead_out_rate
    m.drift_age_cycles m.drift_tau_cycles m.adc_offset_sigma

type stuck = {
  slice : int;
  negative : bool;
  out_line : int;
  in_line : int;
  on : bool;
}

type instance = {
  dim : int;
  stuck : stuck list;
  dead_in : bool array;
  dead_out : bool array;
  drift_factor : float;
  adc_offset : int array array;
}

let is_null i =
  i.stuck = []
  && (not (Array.exists Fun.id i.dead_in))
  && (not (Array.exists Fun.id i.dead_out))
  && i.drift_factor = 1.0
  && Array.for_all (Array.for_all (fun v -> v = 0)) i.adc_offset

let count i =
  let lines a = Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 a in
  List.length i.stuck + lines i.dead_in + lines i.dead_out

type perms = { out_perm : int array; in_perm : int array }

let identity_perms ~dim =
  { out_perm = Array.init dim Fun.id; in_perm = Array.init dim Fun.id }

let is_identity p =
  let id a = Array.for_all Fun.id (Array.mapi (fun k v -> k = v) a) in
  id p.out_perm && id p.in_perm

type spec = { instance : instance; perms : perms option }

type plan = {
  model : t;
  seed : int;
  remap : (int * int * int, perms) Hashtbl.t;
}

let plan ?(seed = 0) model = { model; seed; remap = Hashtbl.create 16 }

(* Child stream for the stack at (tile, core, mvmu): every coordinate is
   folded in through its own [Rng.stream] hop (each hop finalizes the
   state with a full mix), so neighbouring stacks draw from decorrelated
   streams and the realization of one stack never depends on how many
   draws another stack consumed. *)
let stack_rng ~seed ~tile ~core ~mvmu k =
  let r = Rng.create seed in
  let r = Rng.stream r tile in
  let r = Rng.stream r core in
  let r = Rng.stream r mvmu in
  Rng.stream r k

let realize_instance m ~seed ~tile ~core ~mvmu ~dim ~slices =
  let stream k = stack_rng ~seed ~tile ~core ~mvmu k in
  let stuck =
    if m.stuck_rate <= 0.0 then []
    else begin
      let rng = stream 0 in
      let acc = ref [] in
      for slice = 0 to slices - 1 do
        List.iter
          (fun negative ->
            for out_line = 0 to dim - 1 do
              for in_line = 0 to dim - 1 do
                if Rng.float rng 1.0 < m.stuck_rate then begin
                  let on = Rng.float rng 1.0 < m.stuck_on_fraction in
                  acc := { slice; negative; out_line; in_line; on } :: !acc
                end
              done
            done)
          [ false; true ]
      done;
      List.rev !acc
    end
  in
  let dead_lines k rate =
    if rate <= 0.0 then Array.make dim false
    else begin
      let rng = stream k in
      Array.init dim (fun _ -> Rng.float rng 1.0 < rate)
    end
  in
  let dead_in = dead_lines 1 m.dead_in_rate in
  let dead_out = dead_lines 2 m.dead_out_rate in
  let adc_offset =
    if m.adc_offset_sigma <= 0.0 then [||]
    else begin
      let rng = stream 3 in
      Array.init slices (fun _ ->
          Array.init dim (fun _ ->
              Float.to_int
                (Float.round (Rng.gaussian rng *. m.adc_offset_sigma))))
    end
  in
  let drift_factor =
    if drift_active m then exp (-.m.drift_age_cycles /. m.drift_tau_cycles)
    else 1.0
  in
  { dim; stuck; dead_in; dead_out; drift_factor; adc_offset }

let realize plan ~config ~tile ~core ~mvmu =
  let dim = config.Puma_hwmodel.Config.mvmu_dim in
  let slices = Puma_hwmodel.Config.slices config in
  let instance =
    realize_instance plan.model ~seed:plan.seed ~tile ~core ~mvmu ~dim ~slices
  in
  let perms = Hashtbl.find_opt plan.remap (tile, core, mvmu) in
  match perms with
  | None when is_null instance -> None
  | _ -> Some { instance; perms }
