(** Minimal JSON tree, printer and parser.

    Enough of RFC 8259 for the toolchain's machine-readable outputs
    (profiles, Chrome trace events, analyzer reports) and for tests to
    parse them back and validate structure — without an external
    dependency. Integers are kept distinct from floats on printing
    ([Int 3] prints as [3], [Float 3.] as [3.0]); the parser returns
    [Int] for number tokens without fraction/exponent that fit in an
    OCaml [int], [Float] otherwise. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Strings are escaped per RFC 8259;
    non-finite floats are rendered as [null] (JSON has no NaN/inf). *)

val to_buffer : Buffer.t -> t -> unit
(** Append the compact rendering (what {!to_string} uses; lets large
    documents stream into one buffer). *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed; trailing
    garbage is an error). Errors carry a character offset. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] for absent fields or non-objects). *)

val to_int : t -> int option
(** [Int n] (and integral [Float]) as [n]. *)

val to_float : t -> float option
(** [Int] or [Float] as float. *)

val to_list : t -> t list option
val to_str : t -> string option
