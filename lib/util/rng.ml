type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let stream t k =
  let z = Int64.add t.state (Int64.mul (Int64.of_int (k + 1)) golden_gamma) in
  { state = mix64 z }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits -> [0,1) *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)
let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
