(** Deterministic pseudo-random number generation.

    Every stochastic element of the reproduction (synthetic weights and
    inputs, memristor write noise, random-partitioning baselines) draws from
    an explicit generator seeded by the experiment, so that every table and
    figure is bit-reproducible. The generator is splitmix64. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Generators are mutable. *)

val split : t -> t
(** Derive an independent child stream (for per-component noise sources).
    Advances the parent: successive [split]s yield distinct children. *)

val stream : t -> int -> t
(** [stream t k] derives the [k]-th indexed child stream from [t]'s
    current state {e without} advancing [t]: the same [(t, k)] always
    yields the same stream, different [k] yield decorrelated streams.
    Used to give every crossbar stack / fault category its own
    reproducible noise source independent of evaluation order. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
