(** Domain-based worker pool.

    A minimal fork-join primitive over OCaml 5 domains: a fixed set of
    workers drains a range of task indices by chunked work-stealing over a
    shared atomic counter. Used by the batched-inference runtime to shard
    independent simulations across domains; usable by any future parallel
    pass whose tasks are indexed and independent.

    With [domains = 1] no domain is spawned and tasks run in submission
    order on the calling domain, so a serial run is an ordinary loop (and
    deterministic scheduling is trivial). With more domains, which worker
    executes which index is scheduling-dependent; callers that need
    reproducible results must make each task's outcome a function of its
    index alone. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the host parallelism to use
    when the caller does not choose. *)

val parallel_for : ?domains:int -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for ~domains ~chunk ~n f] runs [f i] for every [0 <= i < n].
    Workers repeatedly claim [chunk] consecutive indices (default 1) from
    an atomic cursor until the range is exhausted. The first exception
    raised by any task is re-raised on the caller after all workers have
    stopped claiming work. [domains] defaults to {!default_domains};
    values are clamped to [1, n]. *)

val map_init :
  ?domains:int ->
  ?chunk:int ->
  n:int ->
  init:(worker:int -> 's) ->
  ('s -> int -> 'a) ->
  'a array
(** [map_init ~domains ~chunk ~n ~init f] is like {!parallel_for} but
    collects results: returns [|r0; ...; r(n-1)|] where [ri = f state i]
    and [state] is the worker-local state built once per worker by
    [init ~worker] (workers are numbered from 0). Use the state for
    resources that are expensive to build and unsafe to share — e.g. one
    simulated node per domain. [init] for worker 0 runs on the calling
    domain. *)
