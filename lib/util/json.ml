type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_into buf f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else
    (* %.17g roundtrips any double; trim via shortest-exact search. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then Buffer.add_string buf s
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> float_into buf f
  | String s -> escape_into buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of int * string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (st.pos, msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | Some got -> error st (Printf.sprintf "expected %C, found %C" c got)
  | None -> error st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then error st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.src then error st "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        match e with
        | '"' -> Buffer.add_char buf '"'; go ()
        | '\\' -> Buffer.add_char buf '\\'; go ()
        | '/' -> Buffer.add_char buf '/'; go ()
        | 'b' -> Buffer.add_char buf '\b'; go ()
        | 'f' -> Buffer.add_char buf '\012'; go ()
        | 'n' -> Buffer.add_char buf '\n'; go ()
        | 'r' -> Buffer.add_char buf '\r'; go ()
        | 't' -> Buffer.add_char buf '\t'; go ()
        | 'u' ->
            if st.pos + 4 > String.length st.src then error st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error st "bad \\u escape"
            in
            st.pos <- st.pos + 4;
            (* Encode the code point as UTF-8 (surrogate pairs are kept as
               two separate 3-byte sequences — fine for round-tripping our
               own ASCII output). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | c -> error st (Printf.sprintf "bad escape \\%c" c))
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_int = ref true in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let digits () =
    let n0 = st.pos in
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with '0' .. '9' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = n0 then error st "expected digit"
  in
  digits ();
  if peek st = Some '.' then begin
    is_int := false;
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_int := false;
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_int then
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> Float (float_of_string text)
  else Float (float_of_string text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> error st "expected ',' or '}'"
        in
        fields []
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> error st "expected ',' or ']'"
        in
        elements []
      end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then error st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "at offset %d: %s" pos msg)

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_str = function String s -> Some s | _ -> None
