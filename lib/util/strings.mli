(** Tiny string helpers missing from the stdlib. *)

val contains : sub:string -> string -> bool
(** [contains ~sub s] is true iff [sub] occurs in [s] ([sub = ""] always
    does). *)
