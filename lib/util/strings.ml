let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0
  end
