let default_domains () = Domain.recommended_domain_count ()

(* Shared state of one fork-join region: a cursor over [0, n) that workers
   advance by [chunk], and the first exception any task raised. *)
type region = {
  cursor : int Atomic.t;
  n : int;
  chunk : int;
  failure : exn option Atomic.t;
}

let worker_loop region f =
  let continue = ref true in
  while !continue do
    let start = Atomic.fetch_and_add region.cursor region.chunk in
    if start >= region.n || Atomic.get region.failure <> None then
      continue := false
    else
      let stop = min (start + region.chunk) region.n in
      try
        for i = start to stop - 1 do
          f i
        done
      with e ->
        (* Keep the first failure; losers of the race just stop early. *)
        ignore (Atomic.compare_and_set region.failure None (Some e));
        continue := false
  done

let run_region ~domains ~chunk ~n body =
  if n < 0 then invalid_arg "Pool: negative task count";
  if chunk <= 0 then invalid_arg "Pool: chunk must be positive";
  let domains = max 1 (min domains (max 1 n)) in
  let region =
    { cursor = Atomic.make 0; n; chunk; failure = Atomic.make None }
  in
  if domains = 1 then body region ~worker:0
  else begin
    let helpers =
      List.init (domains - 1) (fun k ->
          Domain.spawn (fun () -> body region ~worker:(k + 1)))
    in
    body region ~worker:0;
    List.iter Domain.join helpers
  end;
  match Atomic.get region.failure with Some e -> raise e | None -> ()

let parallel_for ?(domains = default_domains ()) ?(chunk = 1) ~n f =
  run_region ~domains ~chunk ~n (fun region ~worker:_ -> worker_loop region f)

let map_init ?(domains = default_domains ()) ?(chunk = 1) ~n ~init f =
  let results = Array.make n None in
  run_region ~domains ~chunk ~n (fun region ~worker ->
      (* Build the worker state lazily: a worker that finds the range
         already drained never pays for it. *)
      let state = lazy (init ~worker) in
      worker_loop region (fun i -> results.(i) <- Some (f (Lazy.force state) i)));
  Array.map
    (function Some r -> r | None -> invalid_arg "Pool.map_init: task skipped")
    results
