(* Fault tolerance of crossbar inference.

   The paper's reliability discussion (Section 7.6, citing coding schemes
   for reliable memristor computation) asks how inference behaves when
   devices fail. This example compiles the digit-recognition MLP and runs
   a small Monte-Carlo campaign with the reliability subsystem: stuck
   cells and dead lines are injected at increasing rates (two seeds per
   rate), every inference is compared against the golden fault-free run,
   and the same sweep is repeated with the fault-aware remapping pass,
   which retires faulty crossbar lines onto the spare zero-padding
   rows/columns of partially-filled blocks.

     dune exec examples/fault_tolerance.exe *)

module Models = Puma_nn.Models
module Network = Puma_nn.Network
module Campaign = Puma_fault.Campaign

let () =
  let graph = Network.build_graph Models.mini_mlp in
  let result = Puma.compile graph in
  let program = result.Puma_compiler.Compile.program in
  let spec =
    {
      Campaign.default_spec with
      rates = [ 5e-4; 2e-3; 5e-3 ];
      fault_seeds = [ 1; 2 ];
      samples = 16;
    }
  in
  let plain = Campaign.run ~key:"mini-mlp" program spec in
  let healed =
    Campaign.run ~key:"mini-mlp" program { spec with remap = true }
  in
  Printf.printf "%-12s %-8s %-22s %s\n" "fault rate" "faults"
    "flip rate / mean ulps" "with remap";
  List.iter2
    (fun (rate, plain_pts) (_, healed_pts) ->
      let mean f pts =
        List.fold_left (fun acc p -> acc +. f p) 0.0 pts
        /. Float.of_int (List.length pts)
      in
      Printf.printf "%-12.4f %-8.0f %6.1f%% / %-12.2f %6.1f%% / %-12.2f\n"
        rate
        (mean (fun (p : Campaign.point) -> Float.of_int p.total_faults) plain_pts)
        (100.0 *. mean (fun (p : Campaign.point) -> p.flip_rate) plain_pts)
        (mean (fun (p : Campaign.point) -> p.mean_err_ulps) plain_pts)
        (100.0 *. mean (fun (p : Campaign.point) -> p.flip_rate) healed_pts)
        (mean (fun (p : Campaign.point) -> p.mean_err_ulps) healed_pts))
    (Campaign.by_rate plain) (Campaign.by_rate healed);
  (* The remap pass also reports capacity diagnostics when faults exceed
     the spare lines; show one realization's report. *)
  let model = Campaign.at_rate spec.base 5e-3 in
  let r = Puma_fault.Remap.build ~model ~seed:1 program in
  Printf.printf
    "\nremap at rate 0.005, seed 1: %d faults, %d stacks remapped, %d \
     errors, %d warnings\n"
    r.total_faults r.remapped_mvmus (Puma_fault.Remap.errors r)
    (Puma_fault.Remap.warnings r);
  List.iteri
    (fun i d ->
      if i < 4 then
        Format.printf "  %a@." Puma_analysis.Diag.pp d)
    r.diags
