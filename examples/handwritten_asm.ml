(* Hand-written PUMA assembly, end to end.

   The compiler is optional: this example writes a one-core program in
   textual assembly (docs/ISA.md), assembles it with Puma_isa.Asm, binds
   a crossbar image and I/O addresses by hand, validates it with the
   static checker and analyzer and runs it on the simulated node.

   The program computes y = relu(W x) - 0.25 for a 32-wide input:

     load  xin0[0], @0, w=32      ; shared memory -> DAC registers
     mvm   mask=0x01 ...          ; the analog matrix-vector multiply
     copy  r0, xout0[0], w=32     ; ADC registers -> general registers
     alu.relu  r0, r0, w=32
     alui.sub  r0, r0, #1024, w=32  ; 1024 raw = 0.25 in Q3.12
     store @32, r0, count=0, w=32

     dune exec examples/handwritten_asm.exe *)

module Config = Puma_hwmodel.Config
module Tensor = Puma_util.Tensor
module Fixed = Puma_util.Fixed

let config = { Config.sweetspot with mvmu_dim = 32 }

let source =
  "  ; y = relu(W x) - 0.25\n\
   load xin0[0], @0, w=32\n\
   mvm mask=0x01 filter=0 stride=0\n\
   copy r0, xout0[0], w=32\n\
   alu.relu r0, r0, w=32\n\
   alui.sub r0, r0, #1024, w=32\n\
   store @32, r0, count=0, w=32\n\
   halt\n"

let () =
  let layout = Puma_isa.Operand.layout config in
  let code =
    match Puma_isa.Asm.parse_program layout source with
    | Ok code -> code
    | Error e -> failwith e
  in
  print_endline "assembled:";
  print_string (Puma_isa.Asm.program_to_string layout code);
  (* A circulant weight matrix: output i averages inputs i and i+1. *)
  let rng = Puma_util.Rng.create 5 in
  let weights =
    Tensor.mat_init 32 32 (fun i j ->
        if j = i || j = (i + 1) mod 32 then 0.5 else 0.0)
  in
  let program =
    {
      Puma_isa.Program.config;
      tiles =
        [|
          {
            Puma_isa.Program.tile_index = 0;
            core_code = [| code |];
            tile_code = [||];
            mvmu_images = [ { core_index = 0; mvmu_index = 0; weights } ];
          };
        |];
      inputs =
        [ { Puma_isa.Program.name = "x"; tile = 0; mem_addr = 0; length = 32; offset = 0 } ];
      outputs =
        [ { Puma_isa.Program.name = "y"; tile = 0; mem_addr = 32; length = 32; offset = 0 } ];
      constants = [];
    }
  in
  Puma_isa.Check.check_exn program;
  (* The full static analyzer (dataflow, consumer counts, channels): a
     hand-written program earns the same scrutiny compiled ones get. *)
  let report = Puma_analysis.Analyze.program program in
  Format.printf "analyzer: %a" Puma_analysis.Analyze.pp report;
  if Puma_analysis.Analyze.has_errors report then
    failwith "static analysis found errors";
  let session = Puma.Session.of_program program in
  let x = Tensor.vec_rand rng 32 1.0 in
  let y = List.assoc "y" (Puma.Session.infer session [ ("x", x) ]) in
  (* Validate against the arithmetic we wrote. *)
  let expected =
    Array.init 32 (fun i ->
        Float.max 0.0 (0.5 *. (x.(i) +. x.((i + 1) mod 32))) -. 0.25)
  in
  Printf.printf "max |error| vs hand-computed result: %.5f\n"
    (Tensor.vec_max_abs_diff expected y);
  Format.printf "%a@." Puma_sim.Metrics.pp (Puma.Session.metrics session)
